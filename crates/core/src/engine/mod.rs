//! Sampling engines.
//!
//! Four engines execute the same [`SamplingApp`]:
//!
//! * [`nextdoor`] — the paper's contribution: transit-parallel execution
//!   with a GPU-built scheduling index, three load-balanced kernel classes
//!   and per-class caching (§6).
//! * [`sp`] — the optimised sample-parallel baseline of §5.1/§8.2 ("SP").
//! * [`tp`] — the vanilla transit-parallel baseline of §5.2 ("TP"): map
//!   inversion plus one thread block per transit, no load balancing.
//! * [`cpu`] — a sequential host reference used as the correctness oracle.
//!
//! All four produce **bit-identical samples** for the same `(graph, app,
//! initial samples, seed)` because every random draw is keyed by its logical
//! coordinate `(sample, step, slot)`, never by thread or execution order.

pub(crate) mod collective;
pub mod cpu;
pub(crate) mod driver;
pub(crate) mod kernels;
pub mod nextdoor;
pub mod profile;
pub mod scheduling;
pub mod sp;
pub mod tp;
pub mod unique;

use crate::api::{
    EdgeCost, EdgeSource, NextCtx, RngStream, SamplingApp, SamplingType, Steps, NULL_VERTEX,
};
use crate::store::SampleStore;
use nextdoor_gpu::lane::LaneTrace;
use nextdoor_gpu::Counters;
use nextdoor_graph::{Csr, VertexId};

/// Salt mixed into the seed for `stepTransits` draws so that they never
/// collide with `next` draws.
pub(crate) const TRANSIT_SEED_SALT: u64 = 0x7452_414E_5349_5453; // "TRANSITS"

/// Per-sample RNG keying of a (possibly fused) run.
///
/// Every random draw in the runtime is keyed by the logical coordinate
/// `(seed, sample, step, slot)`. A standalone run keys sample `s` simply as
/// `(seed, s)` — that is [`SampleKeys::uniform`], and it is what every
/// `run_*` entry point uses. When a [`SamplerSession`](crate::session)
/// fuses several queries into one batch, the fused store's *global* sample
/// index differs from the index the same sample holds when its query runs
/// alone; [`SampleKeys::fused`] maps each global index back to the
/// `(seed, local id)` pair its standalone run would use, which is what
/// makes fused execution bit-identical to per-query execution.
#[derive(Debug, Clone)]
pub struct SampleKeys {
    seed: u64,
    /// Per-sample `(seed, local id)` overrides; `None` keys sample `s` as
    /// `(self.seed, s)`.
    map: Option<Vec<(u64, u64)>>,
}

impl SampleKeys {
    /// Keys every sample `s` as `(seed, s)` — the standalone-run layout.
    pub fn uniform(seed: u64) -> Self {
        SampleKeys { seed, map: None }
    }

    /// Keys sample `s` of a fused batch as `map[s]`, the `(seed, local id)`
    /// pair the sample holds in its own query.
    pub fn fused(map: Vec<(u64, u64)>) -> Self {
        SampleKeys {
            seed: 0,
            map: Some(map),
        }
    }

    /// The `(seed, local sample id)` keying RNG streams of sample `sample`.
    ///
    /// # Panics
    ///
    /// Panics if a fused table is shorter than the store it keys (an
    /// internal invariant: the session builds the table from the same
    /// initial samples it runs).
    #[inline]
    pub fn key(&self, sample: usize) -> (u64, u64) {
        match &self.map {
            Some(m) => m[sample],
            None => (self.seed, sample as u64),
        }
    }
}

/// Result of running a sampling application on an engine.
pub struct RunResult {
    /// All sample contents (both output formats are available on the store).
    pub store: SampleStore,
    /// Timing and counter statistics.
    pub stats: EngineStats,
    /// Faults the run observed and survived (see
    /// [`FaultReport`](crate::error::FaultReport)); clean for an
    /// undisturbed run.
    pub report: crate::error::FaultReport,
}

/// Timing breakdown and simulator counters for one run.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// End-to-end time in milliseconds (simulated for GPU engines,
    /// wall-clock for the CPU reference).
    pub total_ms: f64,
    /// Time spent executing sampling kernels.
    pub sampling_ms: f64,
    /// Time spent building the scheduling index (map inversion, sort, scan;
    /// Figure 6's second component). Zero for SP and CPU.
    pub scheduling_ms: f64,
    /// Simulator counter deltas for the run (empty for the CPU reference).
    pub counters: Counters,
    /// Steps actually executed.
    pub steps_run: usize,
    /// Per-kernel, per-step breakdown of the run (empty for the CPU
    /// reference).
    pub profile: profile::RunProfile,
}

/// The per-step execution plan shared by every engine.
pub(crate) struct StepPlan {
    /// Step index.
    pub step: usize,
    /// `sampleSize(step)` — the paper's `mᵢ`.
    pub m: usize,
    /// Transits per sample at this step.
    pub tps: usize,
    /// Output slots per sample: `tps * m` (individual) or `m` (collective).
    pub slots: usize,
    /// Transit of each `(sample, transit_idx)`, `NULL_VERTEX` when the
    /// sample has terminated; length `num_samples * tps`.
    pub transits: Vec<VertexId>,
    /// Number of live (non-NULL) transit entries.
    pub live: usize,
}

/// Computes the step plan: sizes plus the `stepTransits` values.
pub(crate) fn plan_step(
    app: &dyn SamplingApp,
    store: &SampleStore,
    step: usize,
    keys: &SampleKeys,
) -> StepPlan {
    let init_len = store.initial(0).len();
    // `tps` sizes the transit array for *every* sample, so this derivation
    // is only sound when all samples carry the same number of initial
    // vertices — `validate_run` rejects ragged inputs at every `run_*`
    // entry point before any engine reaches this function.
    debug_assert!(
        (0..store.num_samples()).all(|s| store.initial(s).len() == init_len),
        "plan_step requires uniform initial-vertex counts (enforced by validate_run)"
    );
    let tps = app.num_transits(step, init_len);
    let m = app.sample_size(step);
    let slots = match app.sampling_type() {
        SamplingType::Individual => tps * m,
        SamplingType::Collective => m,
    };
    let ns = store.num_samples();
    let mut transits = vec![NULL_VERTEX; ns * tps];
    let mut live = 0;
    for s in 0..ns {
        let view = store.view(s, step);
        let (seed, local) = keys.key(s);
        for t in 0..tps {
            let mut rng = RngStream::new(seed ^ TRANSIT_SEED_SALT, local as usize, step, t);
            let v = app.step_transit(step, &view, t, &mut rng);
            if v != NULL_VERTEX {
                live += 1;
            }
            transits[s * tps + t] = v;
        }
    }
    StepPlan {
        step,
        m,
        tps,
        slots,
        transits,
        live,
    }
}

/// Number of steps to attempt.
pub(crate) fn step_budget(app: &dyn SamplingApp) -> usize {
    match app.steps() {
        Steps::Fixed(k) => k,
        Steps::Infinite => app.max_steps_cap(),
    }
}

/// Runs `next` for one individual-transit slot, returning the sampled
/// vertex (or `NULL_VERTEX`) and any application edges it recorded.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_next_individual(
    app: &dyn SamplingApp,
    graph: &Csr,
    store: &SampleStore,
    plan: &StepPlan,
    sample: usize,
    tidx: usize,
    j: usize,
    keys: &SampleKeys,
    cost: EdgeCost,
    cached_len: usize,
    cols_base: u64,
    trace: Option<&mut LaneTrace>,
) -> (VertexId, Vec<(VertexId, VertexId)>) {
    let transit = plan.transits[sample * plan.tps + tidx];
    debug_assert_ne!(transit, NULL_VERTEX);
    let slot = tidx * plan.m + j;
    let view = store.view(sample, plan.step);
    let transit_slice = [transit];
    let (seed, local) = keys.key(sample);
    let mut ctx = NextCtx {
        step: plan.step,
        sample_id: local as usize,
        slot,
        graph,
        source: EdgeSource::Transit { transit },
        transits: &transit_slice,
        view: &view,
        rng: RngStream::new(seed, local as usize, plan.step, slot),
        cost,
        cached_len,
        trace,
        graph_cols_base: cols_base,
        new_edges: Vec::new(),
    };
    let v = app.next(&mut ctx).unwrap_or(NULL_VERTEX);
    let edges = ctx.take_new_edges();
    (v, edges)
}

/// Runs `next` for one collective-transit slot over a prebuilt combined
/// neighbourhood.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_next_collective(
    app: &dyn SamplingApp,
    graph: &Csr,
    store: &SampleStore,
    plan: &StepPlan,
    sample: usize,
    j: usize,
    combined: &[VertexId],
    combined_base: u64,
    transits: &[VertexId],
    keys: &SampleKeys,
    trace: Option<&mut LaneTrace>,
) -> (VertexId, Vec<(VertexId, VertexId)>) {
    let view = store.view(sample, plan.step);
    let (seed, local) = keys.key(sample);
    let mut ctx = NextCtx {
        step: plan.step,
        sample_id: local as usize,
        slot: j,
        graph,
        source: EdgeSource::Combined {
            vertices: combined,
            base_addr: combined_base,
        },
        transits,
        view: &view,
        rng: RngStream::new(seed, local as usize, plan.step, j),
        cost: EdgeCost::Global,
        cached_len: 0,
        trace,
        graph_cols_base: 0x2000,
        new_edges: Vec::new(),
    };
    let v = app.next(&mut ctx).unwrap_or(NULL_VERTEX);
    let edges = ctx.take_new_edges();
    (v, edges)
}

/// Builds the combined neighbourhood of a sample: the concatenated
/// adjacency lists of its live transits, in transit order. All engines use
/// this same functional definition.
pub(crate) fn build_combined(graph: &Csr, transits: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    for &t in transits {
        if t != NULL_VERTEX {
            out.extend_from_slice(graph.neighbors(t));
        }
    }
    out
}

/// Applies post-step bookkeeping common to every engine: root updates and
/// application-edge recording, then appends the step to the store.
pub(crate) fn finish_step(
    app: &dyn SamplingApp,
    store: &mut SampleStore,
    plan: &StepPlan,
    values: Vec<VertexId>,
    edges: Vec<Vec<(VertexId, VertexId)>>,
) {
    let ns = store.num_samples();
    for (s, es) in edges.into_iter().enumerate() {
        store.add_edges(s, es);
    }
    // Root updates (multi-dimensional random walks replace the chosen root).
    for s in 0..ns {
        for t in 0..plan.tps {
            let transit = plan.transits[s * plan.tps + t];
            if transit == NULL_VERTEX {
                continue;
            }
            for j in 0..plan.m {
                let idx = match app.sampling_type() {
                    SamplingType::Individual => s * plan.slots + t * plan.m + j,
                    SamplingType::Collective => s * plan.slots + j,
                };
                let v = values[idx];
                if v != NULL_VERTEX {
                    let mut roots = std::mem::take(store.roots_of_mut(s));
                    app.update_roots(&mut roots, plan.step, transit, v);
                    *store.roots_of_mut(s) = roots;
                }
            }
            if matches!(app.sampling_type(), SamplingType::Collective) {
                break;
            }
        }
    }
    store.record_step(plan.slots, values);
}

/// Picks `num_samples` initial samples of one random vertex each, the
/// default initial-sample policy mentioned in §4.1.
///
/// # Errors
///
/// Returns [`NextDoorError::EmptyGraph`](crate::error::NextDoorError) when
/// the graph has no vertices to draw from.
pub fn initial_samples_random(
    graph: &Csr,
    num_samples: usize,
    vertices_per_sample: usize,
    seed: u64,
) -> Result<Vec<Vec<VertexId>>, crate::error::NextDoorError> {
    let n = graph.num_vertices() as u32;
    if n == 0 {
        return Err(crate::error::NextDoorError::EmptyGraph);
    }
    Ok((0..num_samples)
        .map(|s| {
            (0..vertices_per_sample)
                .map(|i| nextdoor_gpu::rng::rand_range(seed, s as u64, i as u64, n))
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Steps;
    use nextdoor_graph::gen::ring_lattice;

    struct UniformWalk;
    impl SamplingApp for UniformWalk {
        fn name(&self) -> &'static str {
            "uniform-walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(3)
        }
        fn sample_size(&self, _s: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn plan_step_counts_live_transits() {
        let g = ring_lattice(16, 2, 0);
        let store = SampleStore::new(vec![vec![0], vec![5]]);
        let plan = plan_step(&UniformWalk, &store, 0, &SampleKeys::uniform(42));
        assert_eq!(plan.tps, 1);
        assert_eq!(plan.m, 1);
        assert_eq!(plan.slots, 1);
        assert_eq!(plan.live, 2);
        assert_eq!(plan.transits, vec![0, 5]);
        let _ = g;
    }

    #[test]
    fn run_next_is_deterministic_across_cost_classes() {
        let g = ring_lattice(16, 2, 0);
        let store = SampleStore::new(vec![vec![0]]);
        let plan = plan_step(&UniformWalk, &store, 0, &SampleKeys::uniform(42));
        let keys = SampleKeys::uniform(7);
        let (v1, _) = run_next_individual(
            &UniformWalk,
            &g,
            &store,
            &plan,
            0,
            0,
            0,
            &keys,
            EdgeCost::Global,
            0,
            0,
            None,
        );
        let (v2, _) = run_next_individual(
            &UniformWalk,
            &g,
            &store,
            &plan,
            0,
            0,
            0,
            &keys,
            EdgeCost::Shared,
            999,
            0,
            None,
        );
        assert_eq!(v1, v2, "cost class must not affect the sampled value");
        assert!(g.neighbors(0).contains(&v1));
    }

    #[test]
    fn fused_keys_reproduce_standalone_draws() {
        // A fused store whose second sample belongs to another query (seed
        // 99, local id 0) must draw exactly what that query's standalone
        // run draws for its sample 0.
        let g = ring_lattice(16, 2, 0);
        let fused_store = SampleStore::new(vec![vec![0], vec![5]]);
        let fused_keys = SampleKeys::fused(vec![(7, 0), (99, 0)]);
        let fused_plan = plan_step(&UniformWalk, &fused_store, 0, &fused_keys);
        let (fused_v, _) = run_next_individual(
            &UniformWalk,
            &g,
            &fused_store,
            &fused_plan,
            1,
            0,
            0,
            &fused_keys,
            EdgeCost::Global,
            0,
            0,
            None,
        );
        let solo_store = SampleStore::new(vec![vec![5]]);
        let solo_keys = SampleKeys::uniform(99);
        let solo_plan = plan_step(&UniformWalk, &solo_store, 0, &solo_keys);
        let (solo_v, _) = run_next_individual(
            &UniformWalk,
            &g,
            &solo_store,
            &solo_plan,
            0,
            0,
            0,
            &solo_keys,
            EdgeCost::Global,
            0,
            0,
            None,
        );
        assert_eq!(fused_v, solo_v);
    }

    #[test]
    fn build_combined_concatenates_live_transits() {
        let g = ring_lattice(8, 1, 0);
        let c = build_combined(&g, &[0, NULL_VERTEX, 2]);
        let mut expect = g.neighbors(0).to_vec();
        expect.extend_from_slice(g.neighbors(2));
        assert_eq!(c, expect);
    }

    #[test]
    fn initial_samples_shape_and_determinism() {
        let g = ring_lattice(32, 2, 0);
        let a = initial_samples_random(&g, 5, 3, 9).unwrap();
        let b = initial_samples_random(&g, 5, 3, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|s| s.len() == 3));
        assert!(a.iter().flatten().all(|&v| (v as usize) < g.num_vertices()));
    }

    #[test]
    fn initial_samples_on_empty_graph_is_typed_error() {
        let g = Csr::empty(0);
        assert!(matches!(
            initial_samples_random(&g, 4, 1, 0),
            Err(crate::error::NextDoorError::EmptyGraph)
        ));
    }
}
