//! Unique-neighbour deduplication (paper §6.3).
//!
//! When `unique(step)` is set, NextDoor removes duplicate vertices sampled
//! within each sample at that step by sorting them (parallel radix /
//! bitonic sort) and compacting distinct values. The functional transform —
//! sorted distinct values followed by `NULL` padding — is shared by every
//! engine; the GPU engines additionally charge the in-block sort.

use crate::api::NULL_VERTEX;
use nextdoor_gpu::algorithms::bitonic_sort_shared;
use nextdoor_gpu::{Gpu, LaunchConfig, WARP_SIZE};
use nextdoor_graph::VertexId;

/// Deduplicates each sample's slice of `values` in place: the slice becomes
/// its sorted distinct values, NULL-padded. The canonical functional form
/// used by all engines.
pub fn dedup_values(values: &mut [VertexId], slots: usize, num_samples: usize) {
    debug_assert_eq!(values.len(), slots * num_samples);
    for s in 0..num_samples {
        let chunk = &mut values[s * slots..(s + 1) * slots];
        chunk.sort_unstable(); // NULL (= u32::MAX) sorts last
        let mut w = 0;
        for i in 0..chunk.len() {
            if chunk[i] == NULL_VERTEX {
                break;
            }
            if w == 0 || chunk[w - 1] != chunk[i] {
                chunk[w] = chunk[i];
                w += 1;
            }
        }
        for v in chunk[w..].iter_mut() {
            *v = NULL_VERTEX;
        }
    }
}

/// GPU variant: performs [`dedup_values`] while charging the in-block
/// bitonic sort and the compaction scan, one thread block per sample (the
/// paper assigns one sample to one block when it fits in shared memory).
pub fn dedup_values_gpu(gpu: &mut Gpu, values: &mut [VertexId], slots: usize, num_samples: usize) {
    let padded = slots.next_power_of_two();
    let block_dim = padded.clamp(WARP_SIZE, 1024);
    let shared_fits = padded * 4 <= gpu.spec().shared_mem_per_block;
    let vals_dev = gpu.to_device(values);
    let out_dev = gpu.alloc::<u32>(values.len());
    gpu.launch(
        "unique_dedup",
        LaunchConfig {
            grid_dim: num_samples,
            block_dim,
        },
        |blk| {
            let s = blk.block_idx;
            let arr = if shared_fits {
                blk.shared_alloc(padded)
            } else {
                None
            };
            let Some(arr) = arr else {
                // Spill path: charge a global sort as strided passes.
                blk.for_each_warp(|w| {
                    let gid = w.global_thread_ids();
                    let m = w.mask_where(|l| gid[l] < (s + 1) * slots && gid[l] >= s * slots);
                    if m != 0 {
                        let v = w.ld_global(&vals_dev, &gid.map(|g| g.min(values.len() - 1)), m);
                        w.st_global(&out_dev, &gid.map(|g| g.min(values.len() - 1)), v, m);
                        w.charge_compute(8);
                    }
                });
                return;
            };
            // Load the sample's slice into shared memory.
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let m = w.mask_where(|l| tid[l] < slots);
                if m == 0 {
                    return;
                }
                let idx = tid.map(|t| (s * slots + t.min(slots - 1)).min(values.len() - 1));
                let v = w.ld_global(&vals_dev, &idx, m);
                w.st_shared(&arr, &tid.map(|t| t.min(slots - 1)), v, m);
            });
            blk.syncthreads();
            bitonic_sort_shared(blk, arr, slots);
            // Adjacent-distinct flagging + write back.
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let m = w.mask_where(|l| tid[l] < slots);
                if m == 0 {
                    return;
                }
                let safe = tid.map(|t| t.min(slots - 1));
                let cur = w.ld_shared(&arr, &safe, m);
                let prev = w.ld_shared(&arr, &safe.map(|t| t.saturating_sub(1)), m);
                let _ = (cur, prev);
                w.charge_compute(2);
                let idx = safe.map(|t| (s * slots + t).min(values.len() - 1));
                w.st_global(&out_dev, &idx, cur, m);
            });
        },
    );
    dedup_values(values, slots, num_samples);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_gpu::GpuSpec;

    #[test]
    fn dedup_sorts_and_pads() {
        let mut v = vec![5, 2, 5, NULL_VERTEX, 9, 9, 9, 1];
        dedup_values(&mut v, 4, 2);
        assert_eq!(&v[..4], &[2, 5, NULL_VERTEX, NULL_VERTEX]);
        assert_eq!(&v[4..], &[1, 9, NULL_VERTEX, NULL_VERTEX]);
    }

    #[test]
    fn dedup_all_null_sample() {
        let mut v = vec![NULL_VERTEX; 3];
        dedup_values(&mut v, 3, 1);
        assert_eq!(v, vec![NULL_VERTEX; 3]);
    }

    #[test]
    fn dedup_distinct_untouched() {
        let mut v = vec![3, 1, 2];
        dedup_values(&mut v, 3, 1);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn gpu_dedup_matches_functional_and_charges() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let mut v = vec![7, 7, 3, 3, 10, 2, 2, NULL_VERTEX];
        let mut expect = v.clone();
        dedup_values(&mut expect, 4, 2);
        dedup_values_gpu(&mut gpu, &mut v, 4, 2);
        assert_eq!(v, expect);
        assert!(gpu.counters().shared_loads > 0, "bitonic sort charged");
        assert!(gpu.counters().launches >= 1);
    }
}
