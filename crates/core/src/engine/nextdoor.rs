//! The NextDoor engine: transit-parallel sampling with load balancing and
//! caching (paper §6).

use crate::api::SamplingApp;
use crate::engine::driver::{run_gpu_engine, GpuEngineKind};
use crate::engine::RunResult;
use crate::error::NextDoorError;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` with transit-parallelism: per-step scheduling index (radix
/// sort + scan), Table 2's three kernel classes, shared-memory/register
/// caching of transit adjacencies, and coalesced sub-warp writes.
///
/// When the graph upload does not fit in device memory, the run degrades
/// transparently to the out-of-core engine of [`crate::large_graph`] and
/// produces byte-identical samples (the result's `report` records the
/// degradation). Transiently-faulted steps are retried.
///
/// # Errors
///
/// Returns [`NextDoorError`] on invalid inputs (empty or unequal-sized
/// initial samples, out-of-range roots, zero steps), genuine device-memory
/// exhaustion, device loss, or a step that keeps faulting past its retry
/// budget.
pub fn run_nextdoor(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> Result<RunResult, NextDoorError> {
    run_gpu_engine(gpu, graph, app, init, seed, GpuEngineKind::NextDoor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::cpu::run_cpu;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{ring_lattice, rmat, RmatParams};

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    struct TwoHop;
    impl SamplingApp for TwoHop {
        fn name(&self) -> &'static str {
            "2hop"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(2)
        }
        fn sample_size(&self, step: usize) -> usize {
            if step == 0 {
                4
            } else {
                2
            }
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn matches_cpu_reference_on_walks() {
        let g = rmat(8, 2000, RmatParams::SKEWED, 3);
        let init: Vec<Vec<u32>> = (0..64).map(|i| vec![i * 3 % 256]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &Walk(8), &init, 11).unwrap();
        let cpu = run_cpu(&g, &Walk(8), &init, 11).unwrap();
        assert_eq!(nd.store.final_samples(), cpu.store.final_samples());
    }

    #[test]
    fn matches_cpu_reference_on_khop() {
        let g = rmat(9, 4000, RmatParams::SKEWED, 5);
        let init: Vec<Vec<u32>> = (0..128).map(|i| vec![i as u32 * 4 % 512]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &TwoHop, &init, 77).unwrap();
        let cpu = run_cpu(&g, &TwoHop, &init, 77).unwrap();
        assert_eq!(nd.store.final_samples(), cpu.store.final_samples());
        assert_eq!(nd.stats.steps_run, 2);
    }

    #[test]
    fn scheduling_index_time_is_nonzero_and_bounded() {
        let g = ring_lattice(512, 4, 0);
        let init: Vec<Vec<u32>> = (0..256).map(|i| vec![i as u32]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &Walk(4), &init, 1).unwrap();
        assert!(nd.stats.scheduling_ms > 0.0);
        assert!(nd.stats.sampling_ms > 0.0);
        assert!(nd.stats.scheduling_ms < nd.stats.total_ms);
    }

    #[test]
    fn stores_are_fully_coalesced() {
        // Sub-warp writes should give ~100% store efficiency (Table 4).
        let g = ring_lattice(1024, 8, 0);
        let init: Vec<Vec<u32>> = (0..512).map(|i| vec![i as u32 * 2]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &TwoHop, &init, 5).unwrap();
        let eff = nd.stats.counters.gst_efficiency();
        assert!(eff > 80.0, "store efficiency {eff} too low");
    }

    #[test]
    fn walk_edges_are_real_edges() {
        let g = rmat(8, 1500, RmatParams::SKEWED, 9);
        let init: Vec<Vec<u32>> = (0..32).map(|i| vec![i * 7 % 256]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu, &g, &Walk(6), &init, 2).unwrap();
        for s in nd.store.final_samples() {
            for w in s.windows(2) {
                assert!(g.has_edge(w[0], w[1]) || g.degree(w[0]) == 0);
            }
        }
    }
}
