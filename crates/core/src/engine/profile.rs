//! Engine-level cost attribution built from the device profile.
//!
//! The device records a raw [`KernelRecord`] per launch (see
//! [`nextdoor_gpu::profile`]); this module lifts that stream to the
//! engine's vocabulary: every kernel name is classified into a
//! [`KernelPhase`] (scheduling-index construction, the three Table 2
//! sampling classes, the SP baseline, transit computation, collective
//! builds, post-processing), and a [`RunProfile`] aggregates the records
//! per kernel for the whole run and per executed step. The per-kernel
//! counter deltas sum exactly to the run's global
//! [`Counters`] — tests assert this conservation
//! property for every engine.

use nextdoor_gpu::profile::KernelRecord;
use nextdoor_gpu::{Counters, Gpu};

/// Which stage of the sampling pipeline a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPhase {
    /// Scheduling-index construction: radix sort, scans, compaction and
    /// the class partition (Figure 6's second component).
    Scheduling,
    /// The `stepTransits` kernel reading the previous step's vertices.
    Transit,
    /// The sub-warp sampling kernel (Table 2, row 3).
    SubWarp,
    /// Thread-block sampling kernels (Table 2, row 2; also vanilla TP).
    Block,
    /// The grid sampling kernel (Table 2, row 1).
    Grid,
    /// The fine-grained sample-parallel baseline kernel (§5.1).
    SampleParallel,
    /// Collective-neighbourhood builds and the collective `next` kernel.
    Collective,
    /// Post-processing (unique-neighbour deduplication).
    PostProcess,
    /// Any kernel the engines do not launch themselves.
    #[default]
    Other,
}

impl KernelPhase {
    /// Stable display label.
    pub fn label(self) -> &'static str {
        match self {
            KernelPhase::Scheduling => "scheduling",
            KernelPhase::Transit => "transit",
            KernelPhase::SubWarp => "sub-warp",
            KernelPhase::Block => "block",
            KernelPhase::Grid => "grid",
            KernelPhase::SampleParallel => "sample-parallel",
            KernelPhase::Collective => "collective",
            KernelPhase::PostProcess => "post-process",
            KernelPhase::Other => "other",
        }
    }

    /// Whether the phase runs user `next` code (as opposed to scheduling
    /// or bookkeeping).
    pub fn is_sampling(self) -> bool {
        matches!(
            self,
            KernelPhase::SubWarp
                | KernelPhase::Block
                | KernelPhase::Grid
                | KernelPhase::SampleParallel
                | KernelPhase::Collective
        )
    }
}

/// Classifies a kernel launch name into its pipeline phase.
pub fn classify_kernel(name: &str) -> KernelPhase {
    match name {
        "radix_histogram" | "radix_scatter" | "scan_blocks" | "scan_uniform_add" | "histogram"
        | "reduce_sum" | "compact_scatter" | "segment_flags" | "partition_transits" => {
            KernelPhase::Scheduling
        }
        "step_transits" => KernelPhase::Transit,
        "nextdoor_subwarp" => KernelPhase::SubWarp,
        "nextdoor_block" | "tp_block" => KernelPhase::Block,
        "nextdoor_grid" => KernelPhase::Grid,
        "sp_sample" => KernelPhase::SampleParallel,
        "collective_next" | "nd_combined_build" | "sp_combined_build" => KernelPhase::Collective,
        "unique_dedup" | "cache_install" => KernelPhase::PostProcess,
        _ => KernelPhase::Other,
    }
}

/// Aggregate of one kernel name within a run (or one step of it).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelBreakdown {
    /// Kernel name as launched.
    pub name: String,
    /// Pipeline phase of the kernel.
    pub phase: KernelPhase,
    /// Number of launches.
    pub launches: u64,
    /// Total simulated cycles.
    pub cycles: f64,
    /// Total simulated milliseconds.
    pub ms: f64,
    /// Summed counter deltas of the launches.
    pub counters: Counters,
    /// Launch-averaged achieved occupancy, in `[0, 1]`.
    pub avg_occupancy: f64,
}

/// Per-kernel aggregates of one executed step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepProfile {
    /// Step index.
    pub step: usize,
    /// Per-kernel aggregates, ordered by cycles (descending).
    pub kernels: Vec<KernelBreakdown>,
    /// Total kernel cycles of the step.
    pub cycles: f64,
}

/// The per-kernel, per-step breakdown of one engine run.
///
/// Empty for the CPU reference engine. When the device's bounded profile
/// buffer evicted records mid-run ([`evicted_events`](Self::in_run_evicted)
/// is non-zero) the breakdown covers only the surviving records; the
/// evicted cost is still present in the run's global counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunProfile {
    /// Whole-run per-kernel aggregates, ordered by cycles (descending).
    pub kernels: Vec<KernelBreakdown>,
    /// Per-step aggregates, in execution order (one entry per executed
    /// step, including the retried attempts of that step).
    pub steps: Vec<StepProfile>,
    /// Profile-buffer evictions observed on the device while this run was
    /// in flight (0 means the breakdown is complete).
    pub in_run_evicted: u64,
}

impl RunProfile {
    /// Total simulated milliseconds attributed to `phase`.
    pub fn phase_ms(&self, phase: KernelPhase) -> f64 {
        self.kernels
            .iter()
            .filter(|k| k.phase == phase)
            .map(|k| k.ms)
            .sum()
    }

    /// Total kernel launches in the breakdown.
    pub fn total_launches(&self) -> u64 {
        self.kernels.iter().map(|k| k.launches).sum()
    }

    /// Summed counter deltas of every kernel in the breakdown.
    pub fn total_counters(&self) -> Counters {
        let mut c = Counters::default();
        for k in &self.kernels {
            c.merge(&k.counters);
        }
        c
    }

    /// Builds the breakdown from the device profile.
    ///
    /// `launch0` is [`Gpu::launches_issued`] sampled when the run started;
    /// only records with `launch_idx >= launch0` belong to this run.
    /// `step_marks[i]` brackets step `i`'s launches as a half-open
    /// `[start, end)` range of launch indices.
    pub(crate) fn from_device(gpu: &Gpu, launch0: u64, step_marks: &[(usize, u64, u64)]) -> Self {
        let spec = gpu.spec();
        let records: Vec<&KernelRecord> = gpu
            .profile()
            .kernels()
            .filter(|k| k.launch_idx >= launch0)
            .collect();
        let kernels = aggregate(records.iter().copied(), |c| spec.cycles_to_ms(c));
        let steps = step_marks
            .iter()
            .map(|&(step, start, end)| {
                let ks = aggregate(
                    records
                        .iter()
                        .copied()
                        .filter(|k| k.launch_idx >= start && k.launch_idx < end),
                    |c| spec.cycles_to_ms(c),
                );
                let cycles = ks.iter().map(|k| k.cycles).sum();
                StepProfile {
                    step,
                    kernels: ks,
                    cycles,
                }
            })
            .collect();
        // Records evicted before the run started were already evicted when
        // we sampled launch0; only newly evicted ones can hide this run's
        // launches. The caller cannot distinguish which run they belonged
        // to, so report the device total — 0 still certifies completeness.
        RunProfile {
            kernels,
            steps,
            in_run_evicted: gpu.profile().evicted_events(),
        }
    }
}

/// Groups kernel records by name; deterministic (first-launch order for
/// ties), sorted by total cycles descending.
fn aggregate<'a>(
    records: impl Iterator<Item = &'a KernelRecord>,
    cycles_to_ms: impl Fn(f64) -> f64,
) -> Vec<KernelBreakdown> {
    let mut order: Vec<KernelBreakdown> = Vec::new();
    for k in records {
        let idx = match order.iter().position(|b| b.name == k.name) {
            Some(i) => i,
            None => {
                order.push(KernelBreakdown {
                    name: k.name.clone(),
                    phase: classify_kernel(&k.name),
                    ..KernelBreakdown::default()
                });
                order.len() - 1
            }
        };
        let b = &mut order[idx];
        b.launches += 1;
        b.cycles += k.cycles;
        b.counters.merge(&k.counters);
        b.avg_occupancy += k.occupancy;
    }
    for b in &mut order {
        if b.launches > 0 {
            b.avg_occupancy /= b.launches as f64;
        }
        b.ms = cycles_to_ms(b.cycles);
    }
    order.sort_by(|a, b| b.cycles.total_cmp(&a.cycles));
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_engine_kernels() {
        assert_eq!(classify_kernel("radix_scatter"), KernelPhase::Scheduling);
        assert_eq!(classify_kernel("segment_flags"), KernelPhase::Scheduling);
        assert_eq!(classify_kernel("step_transits"), KernelPhase::Transit);
        assert_eq!(classify_kernel("nextdoor_subwarp"), KernelPhase::SubWarp);
        assert_eq!(classify_kernel("nextdoor_block"), KernelPhase::Block);
        assert_eq!(classify_kernel("tp_block"), KernelPhase::Block);
        assert_eq!(classify_kernel("nextdoor_grid"), KernelPhase::Grid);
        assert_eq!(classify_kernel("sp_sample"), KernelPhase::SampleParallel);
        assert_eq!(classify_kernel("collective_next"), KernelPhase::Collective);
        assert_eq!(classify_kernel("unique_dedup"), KernelPhase::PostProcess);
        assert_eq!(classify_kernel("mystery"), KernelPhase::Other);
        assert!(KernelPhase::SubWarp.is_sampling());
        assert!(!KernelPhase::Scheduling.is_sampling());
        assert_eq!(KernelPhase::SampleParallel.label(), "sample-parallel");
    }
}
