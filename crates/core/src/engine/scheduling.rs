//! Scheduling-index construction (paper §6.1.2, measured in Figure 6).
//!
//! At every step NextDoor inverts the sample→transit relation into a
//! transit→samples map: it sorts the `(transit, sample-slot)` pairs by
//! transit with a parallel radix sort, finds segment boundaries with a
//! parallel scan, and partitions the transit vertices into the three kernel
//! classes by the number of threads each needs. All three stages run as
//! simulated kernels so their cost is measured, not assumed.

use crate::api::NULL_VERTEX;
use nextdoor_gpu::algorithms::{compact, exclusive_scan, radix_sort_pairs};
use nextdoor_gpu::{Gpu, LaunchConfig, OutOfMemory, WARP_SIZE};
use nextdoor_graph::VertexId;

/// One transit vertex's group of sample-slots in the sorted pair array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitSegment {
    /// The transit vertex.
    pub transit: VertexId,
    /// Offset of its first pair in the sorted pair array.
    pub start: usize,
    /// Number of pairs (sample-slots) associated with it.
    pub count: usize,
}

/// The per-step transit→samples map.
#[derive(Debug, Clone, Default)]
pub struct SchedulingIndex {
    /// Pair ids (`sample * tps + tidx`), grouped by transit.
    pub sorted_pair_ids: Vec<u32>,
    /// One segment per distinct transit, ordered by transit id.
    pub segments: Vec<TransitSegment>,
}

/// Table 2's kernel classes: indices into [`SchedulingIndex::segments`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelClasses {
    /// Transits needing fewer threads than a warp.
    pub sub_warp: Vec<usize>,
    /// Transits needing between a warp and a block of threads.
    pub block: Vec<usize>,
    /// Transits needing more than one block.
    pub grid: Vec<usize>,
}

/// Builds the transit→samples map on the simulated GPU.
///
/// `pairs` holds `(transit, pair_id)` with NULL transits already removed;
/// `num_vertices` bounds the radix-sort key range.
///
/// # Errors
///
/// Returns [`OutOfMemory`] when a device allocation fails — genuinely or
/// through a scripted fault (see [`nextdoor_gpu::FaultPlan`]); the step
/// loop absorbs injected faults and retries the step.
pub fn build_scheduling_index(
    gpu: &mut Gpu,
    pairs: &[(VertexId, u32)],
    num_vertices: usize,
) -> Result<SchedulingIndex, OutOfMemory> {
    build_scheduling_index_tuned(gpu, pairs, num_vertices, false)
}

/// [`build_scheduling_index`] with the tuner's key-range knob.
///
/// With `tight_key_range` the radix sort is bounded by the maximum transit
/// id actually live this step instead of `num_vertices - 1`. A tighter
/// bound can only shed whole radix passes; the sort is stable and its
/// output — and therefore every sample — is identical (see
/// [`TuningPlan`](crate::tuning::TuningPlan)).
///
/// # Errors
///
/// Returns [`OutOfMemory`] when a device allocation fails — genuinely or
/// through a scripted fault.
pub fn build_scheduling_index_tuned(
    gpu: &mut Gpu,
    pairs: &[(VertexId, u32)],
    num_vertices: usize,
    tight_key_range: bool,
) -> Result<SchedulingIndex, OutOfMemory> {
    if pairs.is_empty() {
        return Ok(SchedulingIndex::default());
    }
    debug_assert!(pairs.iter().all(|&(t, _)| t != NULL_VERTEX));
    let keys_host: Vec<u32> = pairs.iter().map(|&(t, _)| t).collect();
    let vals_host: Vec<u32> = pairs.iter().map(|&(_, p)| p).collect();
    let max_key = if tight_key_range {
        keys_host.iter().copied().max().unwrap_or(0)
    } else {
        (num_vertices - 1) as u32
    };
    let keys = gpu.try_to_device(&keys_host)?;
    let vals = gpu.try_to_device(&vals_host)?;
    let (sorted_keys, sorted_vals) = radix_sort_pairs(gpu, &keys, &vals, max_key);
    // Segment-boundary flags: position i starts a new transit group.
    let n = pairs.len();
    let flags = gpu.try_alloc::<u32>(n)?;
    let iota: Vec<u32> = (0..n as u32).collect();
    let iota_dev = gpu.try_to_device(&iota)?;
    gpu.launch("segment_flags", LaunchConfig::grid1d(n, 256), |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.mask_where(|l| gid[l] < n);
            if m == 0 {
                return;
            }
            let safe = gid.map(|g| g.min(n - 1));
            let cur = w.ld_global(&sorted_keys, &safe, m);
            let prev = w.ld_global(&sorted_keys, &safe.map(|g| g.saturating_sub(1)), m);
            let f = w.lanes_from_fn(m, |l| u32::from(safe[l] == 0 || cur[l] != prev[l]));
            w.st_global(&flags, &safe, f, m);
        });
    });
    let (starts_dev, _num_segments) = compact(gpu, &iota_dev, &flags);
    let starts = starts_dev.as_slice();
    let sk = sorted_keys.as_slice();
    let mut segments = Vec::with_capacity(starts.len());
    for (i, &st) in starts.iter().enumerate() {
        let end = if i + 1 < starts.len() {
            starts[i + 1] as usize
        } else {
            n
        };
        segments.push(TransitSegment {
            transit: sk[st as usize],
            start: st as usize,
            count: end - st as usize,
        });
    }
    Ok(SchedulingIndex {
        sorted_pair_ids: sorted_vals.as_slice().to_vec(),
        segments,
    })
}

/// Partitions transits into the three kernel classes of Table 2 by the
/// number of threads each needs (`count × m`), charging the scan-based
/// partition pass the paper describes.
///
/// # Errors
///
/// Returns [`OutOfMemory`] when a device allocation fails — genuinely or
/// through a scripted fault.
pub fn partition_kernel_classes(
    gpu: &mut Gpu,
    index: &SchedulingIndex,
    m: usize,
    max_block_threads: usize,
) -> Result<KernelClasses, OutOfMemory> {
    partition_kernel_classes_tuned(gpu, index, m, WARP_SIZE, max_block_threads)
}

/// [`partition_kernel_classes`] with the tuner's sub-warp threshold.
///
/// A transit is sub-warp work when it needs at most `sub_warp_threshold`
/// threads (at most [`WARP_SIZE`] — the sub-warp kernel packs a transit's
/// lanes into one warp). Moving the threshold re-assigns transits between
/// kernel classes; the classes execute the same `(sample, slot)` lanes
/// with the same RNG keying, so samples are unchanged.
///
/// # Errors
///
/// Returns [`OutOfMemory`] when a device allocation fails — genuinely or
/// through a scripted fault.
pub fn partition_kernel_classes_tuned(
    gpu: &mut Gpu,
    index: &SchedulingIndex,
    m: usize,
    sub_warp_threshold: usize,
    max_block_threads: usize,
) -> Result<KernelClasses, OutOfMemory> {
    debug_assert!(sub_warp_threshold <= WARP_SIZE);
    debug_assert!(sub_warp_threshold <= max_block_threads);
    let mut classes = KernelClasses::default();
    let n = index.segments.len();
    if n == 0 {
        return Ok(classes);
    }
    // The classification pass: one thread per transit reads its count and
    // writes a class id; the subsequent scan-compactions are charged as one
    // pass (they share the same traffic shape as `compact`).
    let counts: Vec<u32> = index.segments.iter().map(|s| s.count as u32).collect();
    let counts_dev = gpu.try_to_device(&counts)?;
    let class_dev = gpu.try_alloc::<u32>(n)?;
    gpu.launch("partition_transits", LaunchConfig::grid1d(n, 256), |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let msk = w.mask_where(|l| gid[l] < n);
            if msk == 0 {
                return;
            }
            let safe = gid.map(|g| g.min(n - 1));
            let c = w.ld_global(&counts_dev, &safe, msk);
            let cls = w.map(c, msk, |c| {
                let threads = c as usize * m;
                if threads <= sub_warp_threshold {
                    0
                } else if threads <= max_block_threads {
                    1
                } else {
                    2
                }
            });
            w.st_global(&class_dev, &safe, cls, msk);
        });
    });
    let (positions, _) = exclusive_scan(gpu, &class_dev);
    let _ = positions; // Scan pass charged; host materialises the lists.
    for (i, seg) in index.segments.iter().enumerate() {
        let threads = seg.count * m;
        if threads <= sub_warp_threshold {
            classes.sub_warp.push(i);
        } else if threads <= max_block_threads {
            classes.block.push(i);
        } else {
            classes.grid.push(i);
        }
    }
    Ok(classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nextdoor_gpu::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::small())
    }

    #[test]
    fn index_groups_pairs_by_transit() {
        let mut g = gpu();
        let pairs = vec![(5u32, 0u32), (3, 1), (5, 2), (3, 3), (9, 4), (5, 5)];
        let idx = build_scheduling_index(&mut g, &pairs, 16).unwrap();
        assert_eq!(idx.segments.len(), 3);
        assert_eq!(
            idx.segments[0],
            TransitSegment {
                transit: 3,
                start: 0,
                count: 2
            }
        );
        assert_eq!(idx.segments[1].transit, 5);
        assert_eq!(idx.segments[1].count, 3);
        assert_eq!(idx.segments[2].transit, 9);
        // Stable sort keeps pair order within a transit.
        assert_eq!(idx.sorted_pair_ids, vec![1, 3, 0, 2, 5, 4]);
    }

    #[test]
    fn empty_pairs_yield_empty_index() {
        let mut g = gpu();
        let idx = build_scheduling_index(&mut g, &[], 16).unwrap();
        assert!(idx.segments.is_empty());
        assert!(idx.sorted_pair_ids.is_empty());
    }

    #[test]
    fn single_transit_many_samples() {
        let mut g = gpu();
        let pairs: Vec<(u32, u32)> = (0..100).map(|i| (7u32, i)).collect();
        let idx = build_scheduling_index(&mut g, &pairs, 16).unwrap();
        assert_eq!(idx.segments.len(), 1);
        assert_eq!(idx.segments[0].count, 100);
        assert_eq!(idx.sorted_pair_ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn classes_follow_table2_thresholds() {
        let mut g = gpu();
        // counts: 10 (sub-warp at m=1), 100 (block), 2000 (grid).
        let mut pairs = Vec::new();
        for i in 0..10u32 {
            pairs.push((1u32, i));
        }
        for i in 0..100u32 {
            pairs.push((2u32, 100 + i));
        }
        for i in 0..2000u32 {
            pairs.push((3u32, 1000 + i));
        }
        let idx = build_scheduling_index(&mut g, &pairs, 8).unwrap();
        let classes = partition_kernel_classes(&mut g, &idx, 1, 1024).unwrap();
        assert_eq!(classes.sub_warp.len(), 1);
        assert_eq!(classes.block.len(), 1);
        assert_eq!(classes.grid.len(), 1);
        assert_eq!(idx.segments[classes.grid[0]].transit, 3);
        // With m = 8, the 10-count transit needs 80 threads: block class.
        let classes = partition_kernel_classes(&mut g, &idx, 8, 1024).unwrap();
        assert!(classes.sub_warp.is_empty());
        assert_eq!(classes.block.len(), 2);
    }

    #[test]
    fn scheduling_charges_kernels() {
        let mut g = gpu();
        let pairs: Vec<(u32, u32)> = (0..500).map(|i| (i % 50, i)).collect();
        let before = g.counters().launches;
        let _ = build_scheduling_index(&mut g, &pairs, 64);
        assert!(
            g.counters().launches >= before + 4,
            "sort passes + flags + compact all launch kernels"
        );
    }
}
