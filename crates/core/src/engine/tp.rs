//! The vanilla transit-parallel baseline engine ("TP", paper §5.2).
//!
//! TP inverts the sample→transit map like NextDoor (and pays the same map
//! inversion cost) and caches adjacencies in shared memory, but it has no
//! load balancing: every transit gets one thread block regardless of how
//! many samples it serves, so a hot transit's block becomes a straggler.

use crate::api::SamplingApp;
use crate::engine::driver::{run_gpu_engine, GpuEngineKind};
use crate::engine::RunResult;
use crate::error::NextDoorError;
use nextdoor_gpu::Gpu;
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` with vanilla transit-parallelism.
///
/// # Errors
///
/// Errors under the same conditions as
/// [`crate::engine::sp::run_sample_parallel`] (no degraded mode).
pub fn run_vanilla_tp(
    gpu: &mut Gpu,
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> Result<RunResult, NextDoorError> {
    run_gpu_engine(gpu, graph, app, init, seed, GpuEngineKind::VanillaTp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use crate::engine::cpu::run_cpu;
    use crate::engine::nextdoor::run_nextdoor;
    use nextdoor_gpu::GpuSpec;
    use nextdoor_graph::gen::{rmat, RmatParams};

    struct TwoHop;
    impl SamplingApp for TwoHop {
        fn name(&self) -> &'static str {
            "2hop"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(2)
        }
        fn sample_size(&self, step: usize) -> usize {
            if step == 0 {
                4
            } else {
                2
            }
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<u32> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn matches_cpu_reference() {
        let g = rmat(9, 3000, RmatParams::SKEWED, 13);
        let init: Vec<Vec<u32>> = (0..96).map(|i| vec![(i * 5 % 512) as u32]).collect();
        let mut gpu = Gpu::new(GpuSpec::small());
        let tp = run_vanilla_tp(&mut gpu, &g, &TwoHop, &init, 21).unwrap();
        let cpu = run_cpu(&g, &TwoHop, &init, 21).unwrap();
        assert_eq!(tp.store.final_samples(), cpu.store.final_samples());
        assert!(tp.stats.scheduling_ms > 0.0, "TP pays for map inversion");
    }

    #[test]
    fn nextdoor_outperforms_tp_on_skewed_graphs() {
        // Without the 3-class load balancing, TP's hot-transit blocks become
        // stragglers; NextDoor should finish sampling faster.
        let g = rmat(10, 20_000, RmatParams::SKEWED, 17);
        // Many samples rooted at the same few vertices concentrate load.
        let init: Vec<Vec<u32>> = (0..1024).map(|i| vec![(i % 16) as u32]).collect();
        let mut gpu_tp = Gpu::new(GpuSpec::small());
        let tp = run_vanilla_tp(&mut gpu_tp, &g, &TwoHop, &init, 8).unwrap();
        let mut gpu_nd = Gpu::new(GpuSpec::small());
        let nd = run_nextdoor(&mut gpu_nd, &g, &TwoHop, &init, 8).unwrap();
        assert_eq!(tp.store.final_samples(), nd.store.final_samples());
        assert!(
            nd.stats.sampling_ms < tp.stats.sampling_ms,
            "NextDoor sampling {} ms should beat TP {} ms",
            nd.stats.sampling_ms,
            tp.stats.sampling_ms
        );
    }
}
