//! Sequential CPU reference engine.
//!
//! Not a performance baseline (those live in `nextdoor-baselines`) but the
//! correctness oracle: it computes the exact samples every GPU engine must
//! reproduce.

use std::time::Instant;

use crate::api::{EdgeCost, SamplingApp, SamplingType, NULL_VERTEX};
use crate::engine::{
    build_combined, finish_step, plan_step, run_next_collective, run_next_individual, step_budget,
    unique, EngineStats, RunResult, SampleKeys,
};
use crate::error::{validate_run, NextDoorError};
use crate::store::SampleStore;
use nextdoor_graph::{Csr, VertexId};

/// Runs `app` to completion on the host, single-threaded.
///
/// # Errors
///
/// Returns [`NextDoorError`] if `init` is empty, its samples have unequal
/// lengths, a root vertex is out of range, or `app` declares zero steps.
pub fn run_cpu(
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    seed: u64,
) -> Result<RunResult, NextDoorError> {
    run_cpu_keyed(graph, app, init, &SampleKeys::uniform(seed))
}

/// [`run_cpu`] with an explicit per-sample RNG keying, the host-side oracle
/// for fused session batches (see [`SampleKeys`]).
///
/// # Errors
///
/// Same conditions as [`run_cpu`].
pub fn run_cpu_keyed(
    graph: &Csr,
    app: &dyn SamplingApp,
    init: &[Vec<VertexId>],
    keys: &SampleKeys,
) -> Result<RunResult, NextDoorError> {
    validate_run(graph, app, init)?;
    let mut store = SampleStore::new(init.to_vec());
    let t0 = Instant::now();
    let mut steps_run = 0;
    for step in 0..step_budget(app) {
        let plan = plan_step(app, &store, step, keys);
        if plan.live == 0 {
            break;
        }
        let ns = store.num_samples();
        let mut values = vec![NULL_VERTEX; ns * plan.slots];
        let mut edges = vec![Vec::new(); ns];
        match app.sampling_type() {
            SamplingType::Individual => {
                for s in 0..ns {
                    for t in 0..plan.tps {
                        if plan.transits[s * plan.tps + t] == NULL_VERTEX {
                            continue;
                        }
                        for j in 0..plan.m {
                            let (v, es) = run_next_individual(
                                app,
                                graph,
                                &store,
                                &plan,
                                s,
                                t,
                                j,
                                keys,
                                EdgeCost::Global,
                                0,
                                0,
                                None,
                            );
                            values[s * plan.slots + t * plan.m + j] = v;
                            edges[s].extend(es);
                        }
                    }
                }
            }
            SamplingType::Collective => {
                for s in 0..ns {
                    let sample_transits: Vec<VertexId> =
                        plan.transits[s * plan.tps..(s + 1) * plan.tps].to_vec();
                    if sample_transits.iter().all(|&t| t == NULL_VERTEX) {
                        continue;
                    }
                    let combined = build_combined(graph, &sample_transits);
                    for j in 0..plan.m {
                        let (v, es) = run_next_collective(
                            app,
                            graph,
                            &store,
                            &plan,
                            s,
                            j,
                            &combined,
                            0,
                            &sample_transits,
                            keys,
                            None,
                        );
                        values[s * plan.slots + j] = v;
                        edges[s].extend(es);
                    }
                }
            }
        }
        if app.unique(step) {
            unique::dedup_values(&mut values, plan.slots, ns);
        }
        let live_this_step = values.iter().any(|&v| v != NULL_VERTEX);
        finish_step(app, &mut store, &plan, values, edges);
        steps_run += 1;
        if !live_this_step {
            break;
        }
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok(RunResult {
        store,
        stats: EngineStats {
            total_ms,
            sampling_ms: total_ms,
            scheduling_ms: 0.0,
            counters: Default::default(),
            steps_run,
            profile: Default::default(),
        },
        report: Default::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NextCtx, Steps};
    use nextdoor_graph::gen::ring_lattice;

    struct Walk(usize);
    impl SamplingApp for Walk {
        fn name(&self) -> &'static str {
            "walk"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(self.0)
        }
        fn sample_size(&self, _: usize) -> usize {
            1
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn walk_produces_valid_paths() {
        let g = ring_lattice(32, 2, 0);
        let res = run_cpu(&g, &Walk(10), &[vec![0], vec![7], vec![13]], 42).unwrap();
        assert_eq!(res.stats.steps_run, 10);
        let samples = res.store.final_samples();
        assert_eq!(samples.len(), 3);
        for s in &samples {
            assert_eq!(s.len(), 11, "root + 10 steps");
            for w in s.windows(2) {
                assert!(
                    g.has_edge(w[0], w[1]),
                    "walk takes a non-edge {} -> {}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g = ring_lattice(64, 3, 0);
        let a = run_cpu(&g, &Walk(5), &[vec![1], vec![2]], 9).unwrap();
        let b = run_cpu(&g, &Walk(5), &[vec![1], vec![2]], 9).unwrap();
        assert_eq!(a.store.final_samples(), b.store.final_samples());
        let c = run_cpu(&g, &Walk(5), &[vec![1], vec![2]], 10).unwrap();
        assert_ne!(a.store.final_samples(), c.store.final_samples());
    }

    struct TwoHop;
    impl SamplingApp for TwoHop {
        fn name(&self) -> &'static str {
            "2hop"
        }
        fn steps(&self) -> Steps {
            Steps::Fixed(2)
        }
        fn sample_size(&self, step: usize) -> usize {
            if step == 0 {
                3
            } else {
                2
            }
        }
        fn next(&self, ctx: &mut NextCtx<'_>) -> Option<VertexId> {
            let d = ctx.num_edges();
            if d == 0 {
                return None;
            }
            let i = ctx.rand_range(d);
            Some(ctx.src_edge(i))
        }
    }

    #[test]
    fn khop_fanout_shapes() {
        let g = ring_lattice(32, 2, 0);
        let res = run_cpu(&g, &TwoHop, &[vec![0]], 1).unwrap();
        assert_eq!(res.store.step_values(0).slots, 3);
        assert_eq!(res.store.step_values(1).slots, 6);
        assert_eq!(res.store.final_samples()[0].len(), 1 + 3 + 6);
    }

    #[test]
    fn unequal_initial_sizes_rejected() {
        let g = ring_lattice(8, 1, 0);
        let res = run_cpu(&g, &Walk(1), &[vec![0], vec![1, 2]], 0);
        assert!(matches!(
            res.err(),
            Some(NextDoorError::UnequalInitSizes { sample: 1, .. })
        ));
    }
}
