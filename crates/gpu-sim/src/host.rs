//! Host-side output mirrors writable from concurrently executing blocks.
//!
//! The engines keep some kernel outputs in plain host memory (the
//! functional mirror of a device buffer, e.g. the sampled vertices of a
//! step, or the per-sample edge lists). A sequential launch could write
//! those through `&mut` captures; a parallel launch cannot, because the
//! kernel closure is shared by every worker thread. This module provides
//! the two shapes those writes take:
//!
//! * [`SyncSlice`] — indexed writes where each index is written by at most
//!   one block of the launch (the common "one output slot per lane" case).
//! * [`BlockShards`] — per-block append lists, drained *in block order*
//!   after the launch, so the concatenated output is bit-identical to what
//!   the sequential block loop would have appended.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A shared-reference view of a host slice that concurrently executing
/// blocks write disjoint elements of.
///
/// The launch contract mirrors [`crate::DeviceBuffer`]'s: within one
/// launch, each index is written by at most one block, and the slice is not
/// read until the launch returns.
pub struct SyncSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: writes are disjoint per the launch contract (each index written
// by at most one block), and the exclusive borrow held by `SyncSlice`
// prevents any other access for its lifetime.
unsafe impl<T: Send> Send for SyncSlice<'_, T> {}
unsafe impl<T: Send> Sync for SyncSlice<'_, T> {}

impl<'a, T> SyncSlice<'a, T> {
    /// Wraps an exclusive borrow of `slice` for the duration of a launch.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    ///
    /// # Safety
    ///
    /// Within one launch, each index must be written by at most one block,
    /// and the underlying slice must not be read until the launch returns.
    #[inline]
    pub unsafe fn write(&self, idx: usize, v: T) {
        assert!(
            idx < self.len,
            "SyncSlice write out of bounds: {idx} >= {}",
            self.len
        );
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract.
        unsafe { self.ptr.add(idx).write(v) }
    }
}

/// Per-block append lists: block `b` pushes into shard `b` during the
/// launch; afterwards the shards are drained in block order, reproducing
/// exactly the append order of a sequential block loop.
pub struct BlockShards<T> {
    shards: Vec<UnsafeCell<Vec<T>>>,
}

// SAFETY: each shard is only touched by the single thread executing its
// block (the launch runs every block exactly once), so the cells are never
// accessed concurrently.
unsafe impl<T: Send> Sync for BlockShards<T> {}

impl<T> BlockShards<T> {
    /// One empty shard per block of the launch.
    pub fn new(num_blocks: usize) -> Self {
        BlockShards {
            shards: (0..num_blocks)
                .map(|_| UnsafeCell::new(Vec::new()))
                .collect(),
        }
    }

    /// Appends `item` to block `block_idx`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `block_idx` is out of range.
    ///
    /// # Safety
    ///
    /// Must only be called from the (single) thread currently executing
    /// block `block_idx` of the launch.
    #[inline]
    pub unsafe fn push(&self, block_idx: usize, item: T) {
        // SAFETY: only the thread executing `block_idx` touches this cell.
        unsafe { (*self.shards[block_idx].get()).push(item) }
    }

    /// Consumes the shards, yielding every item in canonical block order
    /// (block 0's pushes first, in push order, then block 1's, ...).
    pub fn into_ordered(self) -> impl Iterator<Item = T> {
        self.shards.into_iter().flat_map(|c| c.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_slice_writes_land() {
        let mut data = vec![0u32; 8];
        {
            let s = SyncSlice::new(&mut data);
            assert_eq!(s.len(), 8);
            assert!(!s.is_empty());
            for i in 0..8 {
                // SAFETY: single-threaded, disjoint indices.
                unsafe { s.write(i, (i * 3) as u32) };
            }
        }
        assert_eq!(data, vec![0, 3, 6, 9, 12, 15, 18, 21]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sync_slice_bounds_checked() {
        let mut data = vec![0u32; 2];
        let s = SyncSlice::new(&mut data);
        // SAFETY: single-threaded.
        unsafe { s.write(2, 1) };
    }

    #[test]
    fn block_shards_drain_in_block_order() {
        let shards = BlockShards::new(3);
        // Push out of block order, as concurrent execution would.
        // SAFETY: single-threaded test.
        unsafe {
            shards.push(2, "c1");
            shards.push(0, "a1");
            shards.push(1, "b1");
            shards.push(0, "a2");
        }
        let drained: Vec<&str> = shards.into_ordered().collect();
        assert_eq!(drained, vec!["a1", "a2", "b1", "c1"]);
    }

    #[test]
    fn shards_are_writable_from_worker_threads() {
        let shards = BlockShards::new(16);
        std::thread::scope(|s| {
            let shards = &shards;
            for t in 0..4 {
                s.spawn(move || {
                    for b in (t * 4)..(t * 4 + 4) {
                        // SAFETY: each block index is owned by one thread.
                        unsafe { shards.push(b, b * 10) };
                    }
                });
            }
        });
        let drained: Vec<usize> = shards.into_ordered().collect();
        assert_eq!(drained, (0..16).map(|b| b * 10).collect::<Vec<_>>());
    }
}
