//! Device-wide primitives built from simulated kernels.
//!
//! NextDoor builds its per-step scheduling index with NVIDIA CUB's parallel
//! radix sort and scan (§8.1 of the paper). This module provides the same
//! primitives as sequences of simulated kernel launches, so the
//! scheduling-index phase of the engine has a realistic, *measured* cost —
//! which is exactly what Figure 6 reports.
//!
//! Provided primitives:
//!
//! * [`exclusive_scan`] — multi-block Blelloch-style scan (Hillis–Steele in
//!   shared memory per block, recursive block-sum scan, uniform add).
//! * [`histogram`] — one global atomic per element.
//! * [`radix_sort_pairs`] — LSD radix sort on 8-bit digits with CUB-style
//!   per-block ranking; stable, `O(passes · n)`.
//! * [`compact`] — stream compaction by flag (scan + scatter).
//! * [`bitonic_sort_shared`] — an in-block bitonic network over shared
//!   memory, used by the unique-neighbour stage (§6.3).

use crate::block::BlockCtx;
use crate::launch::{Gpu, LaunchConfig};
use crate::mem::DeviceBuffer;
use crate::warp::{mask_first_n, SharedArray, WARP_SIZE};

/// Threads per block used by the device-wide primitives.
const SCAN_BLOCK: usize = 256;

/// Exclusive prefix sum of `input`; returns the scanned buffer and the
/// total.
pub fn exclusive_scan(gpu: &mut Gpu, input: &DeviceBuffer<u32>) -> (DeviceBuffer<u32>, u32) {
    let n = input.len();
    let out = gpu.alloc::<u32>(n);
    if n == 0 {
        return (out, 0);
    }
    let num_blocks = n.div_ceil(SCAN_BLOCK);
    let sums = gpu.alloc::<u32>(num_blocks);
    scan_blocks_kernel(gpu, input, &out, &sums);
    if num_blocks == 1 {
        let total = sums.as_slice()[0];
        return (out, total);
    }
    let (scanned_sums, total) = exclusive_scan(gpu, &sums);
    uniform_add_kernel(gpu, &out, &scanned_sums);
    (out, total)
}

/// Per-block phase of the scan: each block computes the exclusive scan of
/// its 256-element chunk with warp-shuffle scans (5 shuffle rounds per
/// warp, one shared-memory round trip for the warp aggregates — the same
/// structure as CUB's `BlockScan`) and emits its chunk total.
fn scan_blocks_kernel(
    gpu: &mut Gpu,
    input: &DeviceBuffer<u32>,
    out: &DeviceBuffer<u32>,
    sums: &DeviceBuffer<u32>,
) {
    let n = input.len();
    let cfg = LaunchConfig::grid1d(n, SCAN_BLOCK);
    gpu.launch("scan_blocks", cfg, |blk| {
        let warp_sums = blk
            .shared_alloc(SCAN_BLOCK / WARP_SIZE)
            .expect("aggregates fit");
        let base = blk.block_idx * SCAN_BLOCK;
        let chunk_len = SCAN_BLOCK.min(n.saturating_sub(base));
        if chunk_len == 0 {
            return;
        }
        // Host-side exclusive scan of the chunk (the functional result);
        // the warp ops below charge exactly the shuffle-scan traffic.
        let mut excl = vec![0u32; chunk_len];
        let mut acc = 0u32;
        for (i, e) in excl.iter_mut().enumerate() {
            *e = acc;
            acc = acc.wrapping_add(input.as_slice()[base + i]);
        }
        let total = acc;
        blk.for_each_warp(|w| {
            let tid = w.thread_ids_in_block();
            let gid = w.global_thread_ids();
            let valid = w.mask_where(|l| gid[l] < n);
            if valid == 0 {
                return;
            }
            let safe = gid.map(|g| g.min(n - 1));
            let _ = w.ld_global(input, &safe, valid);
            // Warp-level inclusive scan: log2(32) shuffle + add rounds.
            for _ in 0..5 {
                let dummy: [usize; WARP_SIZE] = std::array::from_fn(|l| l.saturating_sub(1));
                let _ = w.shfl([0; WARP_SIZE], &dummy, valid);
                w.charge_compute(1);
            }
            // Lane 31 publishes the warp aggregate.
            let wi = w.warp_in_block;
            w.st_shared(&warp_sums, &[wi; WARP_SIZE], [0; WARP_SIZE], 1 << 31);
            w.syncwarp();
            // Read the preceding warps' aggregates back and add.
            let _ = w.ld_shared(&warp_sums, &[wi.saturating_sub(1); WARP_SIZE], 1);
            w.charge_compute(1);
            // Write the exclusive results.
            let vals = w.lanes_from_fn(valid, |l| excl.get(tid[l]).copied().unwrap_or(0));
            w.st_global(out, &safe, vals, valid);
            if wi == 0 {
                let bidx = w.block_idx;
                w.st_global(sums, &[bidx; WARP_SIZE], [total; WARP_SIZE], 1);
            }
        });
        blk.syncthreads();
    });
}

/// Adds `block_offsets[block]` to every element of that block's chunk.
fn uniform_add_kernel(gpu: &mut Gpu, out: &DeviceBuffer<u32>, offsets: &DeviceBuffer<u32>) {
    let n = out.len();
    let cfg = LaunchConfig::grid1d(n, SCAN_BLOCK);
    gpu.launch("scan_uniform_add", cfg, |blk| {
        let block = blk.block_idx;
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w.mask_where(|l| gid[l] < n);
            if valid == 0 {
                return;
            }
            let off = w.ld_global(offsets, &[block; WARP_SIZE], 1)[0];
            let v = w.ld_global(out, &gid.map(|g| g.min(n - 1)), valid);
            let added = w.map(v, valid, |x| x.wrapping_add(off));
            w.st_global(out, &gid.map(|g| g.min(n - 1)), added, valid);
        });
    });
}

/// Histogram of `keys` into `num_bins` buckets using global atomics.
///
/// # Panics
///
/// Panics (in the kernel) if a key is `>= num_bins`.
pub fn histogram(gpu: &mut Gpu, keys: &DeviceBuffer<u32>, num_bins: usize) -> DeviceBuffer<u32> {
    let bins = gpu.alloc::<u32>(num_bins);
    let n = keys.len();
    if n == 0 {
        return bins;
    }
    let cfg = LaunchConfig::grid1d(n, SCAN_BLOCK);
    gpu.launch("histogram", cfg, |blk| {
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let valid = w.mask_where(|l| gid[l] < n);
            if valid == 0 {
                return;
            }
            let k = w.ld_global(keys, &gid.map(|g| g.min(n - 1)), valid);
            let idx: [usize; WARP_SIZE] = std::array::from_fn(|l| {
                if valid & (1 << l) != 0 {
                    assert!((k[l] as usize) < num_bins, "key out of histogram range");
                    k[l] as usize
                } else {
                    0
                }
            });
            w.atomic_add_global(&bins, &idx, [1; WARP_SIZE], valid);
        });
    });
    bins
}

/// Stable LSD radix sort of `(keys, vals)` pairs on 8-bit digits.
///
/// `max_key` bounds the key range so only the necessary passes run (e.g.
/// transit ids need `ceil(log2(V) / 8)` passes). Returns sorted buffers.
pub fn radix_sort_pairs(
    gpu: &mut Gpu,
    keys: &DeviceBuffer<u32>,
    vals: &DeviceBuffer<u32>,
    max_key: u32,
) -> (DeviceBuffer<u32>, DeviceBuffer<u32>) {
    assert_eq!(keys.len(), vals.len(), "key/value length mismatch");
    let n = keys.len();
    let mut cur_k = gpu.alloc::<u32>(n);
    let mut cur_v = gpu.alloc::<u32>(n);
    cur_k.as_mut_slice().copy_from_slice(keys.as_slice());
    cur_v.as_mut_slice().copy_from_slice(vals.as_slice());
    if n <= 1 {
        return (cur_k, cur_v);
    }
    let bits = 32 - max_key.leading_zeros().min(31);
    let passes = (bits as usize).div_ceil(8).max(1);
    for pass in 0..passes {
        let shift = (pass * 8) as u32;
        let (nk, nv) = radix_pass(gpu, &cur_k, &cur_v, shift);
        cur_k = nk;
        cur_v = nv;
    }
    (cur_k, cur_v)
}

/// Elements processed per radix block (256 threads × 8 items/thread, as
/// CUB's `DeviceRadixSort` tiles do).
const RADIX_TILE: usize = 2048;

/// One stable counting pass over an 8-bit digit, CUB-style: per-block
/// digit histograms in shared memory, a digit-major global scan, then a
/// shared-memory-staged scatter (elements are locally reordered by digit so
/// that same-digit runs produce coalesced global writes).
fn radix_pass(
    gpu: &mut Gpu,
    keys: &DeviceBuffer<u32>,
    vals: &DeviceBuffer<u32>,
    shift: u32,
) -> (DeviceBuffer<u32>, DeviceBuffer<u32>) {
    const RADIX: usize = 256;
    let n = keys.len();
    let num_blocks = n.div_ceil(RADIX_TILE);
    // `block_hist[digit * num_blocks + block]`: digit-major layout makes the
    // scanned result directly usable as scatter bases.
    let block_hist = gpu.alloc::<u32>(RADIX * num_blocks);
    gpu.launch(
        "radix_histogram",
        LaunchConfig {
            grid_dim: num_blocks,
            block_dim: SCAN_BLOCK,
        },
        |blk| {
            let counts = blk.shared_alloc(RADIX).expect("radix counters fit");
            let block = blk.block_idx;
            let tile_base = block * RADIX_TILE;
            let tile_len = RADIX_TILE.min(n - tile_base);
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                // Zero the shared counters (the 8 warps cover 256 slots).
                w.st_shared(&counts, &tid, [0; WARP_SIZE], u32::MAX);
            });
            blk.syncthreads();
            // Functional counting is done per tile; the kernel charges one
            // coalesced load plus one shared-atomic round trip per 32
            // elements, exactly CUB's upsweep traffic.
            let mut tile_counts = vec![0u32; RADIX];
            for i in 0..tile_len {
                let d = ((keys.as_slice()[tile_base + i] >> shift) & 0xFF) as usize;
                tile_counts[d] += 1;
            }
            blk.for_each_warp(|w| {
                let items = RADIX_TILE / SCAN_BLOCK; // 8 items per thread
                for it in 0..items {
                    let off = it * SCAN_BLOCK + w.warp_in_block * WARP_SIZE;
                    if off >= tile_len {
                        break;
                    }
                    let idx: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| (tile_base + off + l).min(n - 1));
                    let m = w.mask_where(|l| off + l < tile_len);
                    let k = w.ld_global(keys, &idx, m);
                    let digit: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| ((k[l] >> shift) & 0xFF) as usize);
                    // Shared-memory atomic histogram round trip.
                    let old = w.ld_shared(&counts, &digit, m);
                    let _ = w.map(old, m, |x| x + 1);
                    w.st_shared(&counts, &digit, old, m);
                }
            });
            blk.syncthreads();
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let c = w.lanes_from_fn(u32::MAX, |l| tile_counts[tid[l]]);
                let out_idx: [usize; WARP_SIZE] =
                    std::array::from_fn(|l| tid[l] * num_blocks + block);
                w.st_global(&block_hist, &out_idx, c, u32::MAX);
            });
        },
    );
    let (scanned, _total) = exclusive_scan(gpu, &block_hist);
    // Downsweep: each tile recomputes its stable local ranks in shared
    // memory, gathers the 256 digit bases once, locally reorders its
    // elements by digit (shared-memory staging), and writes them out — so
    // same-digit runs land in consecutive destinations and the global
    // writes coalesce, as in CUB's memory-bandwidth-efficient scatter.
    let out_k = gpu.alloc::<u32>(n);
    let out_v = gpu.alloc::<u32>(n);
    gpu.launch(
        "radix_scatter",
        LaunchConfig {
            grid_dim: num_blocks,
            block_dim: SCAN_BLOCK,
        },
        |blk| {
            let block = blk.block_idx;
            let tile_base = block * RADIX_TILE;
            let tile_len = RADIX_TILE.min(n - tile_base);
            // Stable local ranks for this tile.
            let mut local_count = [0u32; RADIX];
            let mut dest = vec![0usize; tile_len];
            for (i, slot) in dest.iter_mut().enumerate() {
                let d = ((keys.as_slice()[tile_base + i] >> shift) & 0xFF) as usize;
                *slot = d; // digit for now; base added below
                local_count[d] += 1;
            }
            // Gather the tile's 256 digit bases (one pass of 8 warp loads;
            // the digit-major layout makes these strided, as on hardware).
            let mut bases = [0u32; RADIX];
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let idx: [usize; WARP_SIZE] = std::array::from_fn(|l| tid[l] * num_blocks + block);
                let b = w.ld_global(&scanned, &idx, u32::MAX);
                for l in 0..WARP_SIZE {
                    bases[tid[l]] = b[l];
                }
            });
            // Resolve destinations with stable ranks.
            let mut running = [0u32; RADIX];
            for slot in &mut dest {
                let d = *slot;
                *slot = (bases[d] + running[d]) as usize;
                running[d] += 1;
            }
            // Order of emission: by digit (the staged order), so that the
            // warp-level stores hit consecutive destinations.
            let mut order: Vec<usize> = (0..tile_len).collect();
            order.sort_by_key(|&i| dest[i]);
            blk.for_each_warp(|w| {
                let items = RADIX_TILE / SCAN_BLOCK;
                for it in 0..items {
                    let off = it * SCAN_BLOCK + w.warp_in_block * WARP_SIZE;
                    if off >= tile_len {
                        break;
                    }
                    let m = w.mask_where(|l| off + l < tile_len);
                    // Coalesced source reads + the shared staging round
                    // trip (write to shared in digit order, read back).
                    let src: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| (tile_base + off + l).min(n - 1));
                    let k = w.ld_global(keys, &src, m);
                    let v = w.ld_global(vals, &src, m);
                    let _ = (k, v);
                    w.charge_compute(2);
                    // Emit in staged order: lanes cover order[off..off+32].
                    let emit: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| order[(off + l).min(tile_len - 1)]);
                    let d_idx: [usize; WARP_SIZE] = std::array::from_fn(|l| dest[emit[l]]);
                    let kv = w.lanes_from_fn(m, |l| keys.as_slice()[tile_base + emit[l]]);
                    let vv = w.lanes_from_fn(m, |l| vals.as_slice()[tile_base + emit[l]]);
                    w.st_global(&out_k, &d_idx, kv, m);
                    w.st_global(&out_v, &d_idx, vv, m);
                }
            });
        },
    );
    (out_k, out_v)
}

/// Stream compaction: keeps `data[i]` where `flags[i] != 0`. Returns the
/// compacted buffer and its length.
pub fn compact(
    gpu: &mut Gpu,
    data: &DeviceBuffer<u32>,
    flags: &DeviceBuffer<u32>,
) -> (DeviceBuffer<u32>, usize) {
    assert_eq!(data.len(), flags.len(), "data/flags length mismatch");
    let n = data.len();
    if n == 0 {
        return (gpu.alloc(0), 0);
    }
    let (positions, total) = exclusive_scan(gpu, flags);
    let out = gpu.alloc::<u32>(total as usize);
    gpu.launch(
        "compact_scatter",
        LaunchConfig::grid1d(n, SCAN_BLOCK),
        |blk| {
            blk.for_each_warp(|w| {
                let gid = w.global_thread_ids();
                let valid = w.mask_where(|l| gid[l] < n);
                if valid == 0 {
                    return;
                }
                let safe = gid.map(|g| g.min(n - 1));
                let f = w.ld_global(flags, &safe, valid);
                let keep = w.mask_where(|l| valid & (1 << l) != 0 && f[l] != 0);
                if keep == 0 {
                    return;
                }
                let v = w.ld_global(data, &safe, keep);
                let pos = w.ld_global(&positions, &safe, keep);
                let dest: [usize; WARP_SIZE] = std::array::from_fn(|l| pos[l] as usize);
                w.st_global(&out, &dest, v, keep);
            });
        },
    );
    (out, total as usize)
}

/// In-block bitonic sort of the first `n` words of a shared array.
///
/// The array must be allocated with at least `n.next_power_of_two()` words;
/// the slots beyond `n` are filled with `u32::MAX` sentinels so that after
/// sorting the first `n` slots hold the sorted data. Used by the
/// unique-neighbour stage, which sorts each sample inside one thread block
/// (§6.3).
pub fn bitonic_sort_shared(blk: &mut BlockCtx<'_>, arr: SharedArray, n: usize) {
    if n <= 1 {
        return;
    }
    let padded = n.next_power_of_two();
    assert!(padded <= arr.len(), "array too small for padded sort range");
    // Fill the padding with MAX sentinels.
    if padded > n {
        let pad = padded - n;
        let warps = pad.div_ceil(WARP_SIZE);
        for wi in 0..warps {
            blk.with_warp(wi % blk.num_warps(), &mut |w| {
                let mask = mask_first_n(pad.saturating_sub(wi * WARP_SIZE).min(WARP_SIZE));
                if mask == 0 {
                    return;
                }
                let idx: [usize; WARP_SIZE] =
                    std::array::from_fn(|l| (n + wi * WARP_SIZE + l).min(padded - 1));
                w.st_shared(&arr, &idx, [u32::MAX; WARP_SIZE], mask);
            });
        }
        blk.syncthreads();
    }
    let mut k = 2usize;
    while k <= padded {
        let mut j = k / 2;
        while j > 0 {
            // Each element pairs with its partner at distance j.
            let pairs = padded / 2;
            let warps = pairs.div_ceil(WARP_SIZE);
            for wi in 0..warps {
                blk.with_warp(wi % blk.num_warps(), &mut |w| {
                    let lane_pair: [usize; WARP_SIZE] = std::array::from_fn(|l| wi * WARP_SIZE + l);
                    let mask = mask_first_n(pairs.saturating_sub(wi * WARP_SIZE).min(WARP_SIZE));
                    if mask == 0 {
                        return;
                    }
                    // Map pair index p to element index i with bit j clear.
                    let i_of = |p: usize| -> usize {
                        let low = p & (j - 1);
                        let high = (p & !(j - 1)) << 1;
                        high | low
                    };
                    let idx_i: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| i_of(lane_pair[l]).min(padded - 1));
                    let idx_p: [usize; WARP_SIZE] =
                        std::array::from_fn(|l| (i_of(lane_pair[l]) | j).min(padded - 1));
                    let a = w.ld_shared(&arr, &idx_i, mask);
                    let b = w.ld_shared(&arr, &idx_p, mask);
                    w.charge_compute(2);
                    let mut new_a = a;
                    let mut new_b = b;
                    for l in 0..WARP_SIZE {
                        if mask & (1 << l) == 0 {
                            continue;
                        }
                        let ascending = i_of(lane_pair[l]) & k == 0;
                        if (a[l] > b[l]) == ascending {
                            new_a[l] = b[l];
                            new_b[l] = a[l];
                        }
                    }
                    w.st_shared(&arr, &idx_i, new_a, mask);
                    w.st_shared(&arr, &idx_p, new_b, mask);
                });
            }
            blk.syncthreads();
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    fn gpu() -> Gpu {
        Gpu::new(GpuSpec::small())
    }

    #[test]
    fn scan_small() {
        let mut g = gpu();
        let input = g.to_device(&[1u32, 2, 3, 4]);
        let (out, total) = exclusive_scan(&mut g, &input);
        assert_eq!(out.as_slice(), &[0, 1, 3, 6]);
        assert_eq!(total, 10);
    }

    #[test]
    fn scan_multi_block() {
        let mut g = gpu();
        let data: Vec<u32> = (0..1000).map(|i| (i % 7) as u32).collect();
        let input = g.to_device(&data);
        let (out, total) = exclusive_scan(&mut g, &input);
        let mut expect = Vec::with_capacity(1000);
        let mut acc = 0u32;
        for &v in &data {
            expect.push(acc);
            acc += v;
        }
        assert_eq!(out.as_slice(), expect.as_slice());
        assert_eq!(total, acc);
    }

    #[test]
    fn scan_empty_and_single() {
        let mut g = gpu();
        let empty = g.to_device(&[] as &[u32]);
        let (out, total) = exclusive_scan(&mut g, &empty);
        assert_eq!(out.len(), 0);
        assert_eq!(total, 0);
        let one = g.to_device(&[5u32]);
        let (out, total) = exclusive_scan(&mut g, &one);
        assert_eq!(out.as_slice(), &[0]);
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_counts() {
        let mut g = gpu();
        let keys = g.to_device(&[0u32, 1, 1, 3, 3, 3, 0]);
        let bins = histogram(&mut g, &keys, 4);
        assert_eq!(bins.as_slice(), &[2, 2, 0, 3]);
    }

    #[test]
    fn radix_sort_small() {
        let mut g = gpu();
        let keys = g.to_device(&[5u32, 1, 4, 1, 5, 9, 2, 6]);
        let vals = g.to_device(&[0u32, 1, 2, 3, 4, 5, 6, 7]);
        let (sk, sv) = radix_sort_pairs(&mut g, &keys, &vals, 9);
        assert_eq!(sk.as_slice(), &[1, 1, 2, 4, 5, 5, 6, 9]);
        // Stability: the two 1-keys keep their original order (1 then 3),
        // likewise the two 5-keys (0 then 4).
        assert_eq!(sv.as_slice(), &[1, 3, 6, 2, 0, 4, 7, 5]);
    }

    #[test]
    fn radix_sort_large_random() {
        let mut g = gpu();
        let data: Vec<u32> = (0..5000)
            .map(|i| crate::rng::rand_range(7, i, 0, 100_000))
            .collect();
        let vals: Vec<u32> = (0..5000).collect();
        let keys_d = g.to_device(&data);
        let vals_d = g.to_device(&vals);
        let (sk, sv) = radix_sort_pairs(&mut g, &keys_d, &vals_d, 100_000);
        let mut expect: Vec<(u32, u32)> = data.iter().cloned().zip(vals.iter().cloned()).collect();
        expect.sort_by_key(|&(k, v)| (k, v));
        let got: Vec<(u32, u32)> = sk
            .as_slice()
            .iter()
            .cloned()
            .zip(sv.as_slice().iter().cloned())
            .collect();
        // Stable sort on (key, original index) equals sorting pairs.
        assert_eq!(got, expect);
    }

    #[test]
    fn radix_passes_depend_on_max_key() {
        let mut g = gpu();
        let keys = g.to_device(&vec![3u32; 512]);
        let vals = g.to_device(&vec![0u32; 512]);
        let before = g.counters().launches;
        let _ = radix_sort_pairs(&mut g, &keys, &vals, 200);
        let one_pass_launches = g.counters().launches - before;
        let before = g.counters().launches;
        let _ = radix_sort_pairs(&mut g, &keys, &vals, 1 << 20);
        let three_pass_launches = g.counters().launches - before;
        assert!(three_pass_launches > one_pass_launches);
    }

    #[test]
    fn compact_keeps_flagged() {
        let mut g = gpu();
        let data = g.to_device(&[10u32, 20, 30, 40, 50]);
        let flags = g.to_device(&[1u32, 0, 1, 0, 1]);
        let (out, count) = compact(&mut g, &data, &flags);
        assert_eq!(count, 3);
        assert_eq!(out.as_slice(), &[10, 30, 50]);
    }

    #[test]
    fn compact_none_and_all() {
        let mut g = gpu();
        let data = g.to_device(&[1u32, 2, 3]);
        let none = g.to_device(&[0u32, 0, 0]);
        let (out, c) = compact(&mut g, &data, &none);
        assert_eq!(c, 0);
        assert!(out.is_empty());
        let all = g.to_device(&[1u32, 1, 1]);
        let (out, c) = compact(&mut g, &data, &all);
        assert_eq!(c, 3);
        assert_eq!(out.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn bitonic_sorts_shared_array() {
        let mut g = gpu();
        let out = g.alloc::<u32>(100);
        let data: Vec<u32> = (0..100)
            .map(|i| crate::rng::rand_range(3, i, 1, 1000))
            .collect();
        let data_d = g.to_device(&data);
        g.launch(
            "sort_block",
            LaunchConfig {
                grid_dim: 1,
                block_dim: 128,
            },
            |blk| {
                let arr = blk.shared_alloc(128).unwrap();
                blk.for_each_warp(|w| {
                    let tid = w.thread_ids_in_block();
                    let m = w.mask_where(|l| tid[l] < 100);
                    if m == 0 {
                        return;
                    }
                    let v = w.ld_global(&data_d, &tid.map(|t| t.min(99)), m);
                    w.st_shared(&arr, &tid.map(|t| t.min(99)), v, m);
                });
                blk.syncthreads();
                bitonic_sort_shared(blk, arr, 100);
                blk.for_each_warp(|w| {
                    let tid = w.thread_ids_in_block();
                    let m = w.mask_where(|l| tid[l] < 100);
                    if m == 0 {
                        return;
                    }
                    let v = w.ld_shared(&arr, &tid.map(|t| t.min(99)), m);
                    w.st_global(&out, &tid.map(|t| t.min(99)), v, m);
                });
            },
        );
        let mut expect = data.clone();
        expect.sort_unstable();
        assert_eq!(out.as_slice(), expect.as_slice());
    }
}

/// Device-wide sum reduction: per-block shared-memory tree reduction, then
/// a second pass over the block sums (the standard two-kernel shape).
pub fn reduce_sum(gpu: &mut Gpu, input: &DeviceBuffer<u32>) -> u64 {
    let n = input.len();
    if n == 0 {
        return 0;
    }
    let num_blocks = n.div_ceil(SCAN_BLOCK);
    let sums = gpu.alloc::<u32>(num_blocks);
    gpu.launch("reduce_sum", LaunchConfig::grid1d(n, SCAN_BLOCK), |blk| {
        let scratch = blk.shared_alloc(SCAN_BLOCK / WARP_SIZE).expect("fits");
        let base = blk.block_idx * SCAN_BLOCK;
        let chunk = SCAN_BLOCK.min(n.saturating_sub(base));
        if chunk == 0 {
            return;
        }
        let total: u64 = input.as_slice()[base..base + chunk]
            .iter()
            .map(|&v| v as u64)
            .sum();
        blk.for_each_warp(|w| {
            let gid = w.global_thread_ids();
            let m = w.mask_where(|l| gid[l] < n);
            if m == 0 {
                return;
            }
            let _ = w.ld_global(input, &gid.map(|g| g.min(n - 1)), m);
            // Warp tree reduction: 5 shuffle+add rounds.
            for _ in 0..5 {
                let dummy: [usize; WARP_SIZE] = std::array::from_fn(|l| l ^ 1);
                let _ = w.shfl([0; WARP_SIZE], &dummy, m);
                w.charge_compute(1);
            }
            let wi = w.warp_in_block;
            w.st_shared(&scratch, &[wi; WARP_SIZE], [0; WARP_SIZE], 1);
            if wi == 0 {
                let _ = w.ld_shared(&scratch, &[0; WARP_SIZE], 1);
                w.charge_compute(3);
                let bidx = w.block_idx;
                w.st_global(
                    &sums,
                    &[bidx; WARP_SIZE],
                    [(total & 0xFFFF_FFFF) as u32; WARP_SIZE],
                    1,
                );
            }
        });
    });
    if num_blocks == 1 {
        sums.as_slice()[0] as u64
    } else {
        // Exact total is accumulated host-side (block partials may exceed
        // u32 in pathological inputs); the recursive pass charges the
        // second kernel's traffic.
        let exact: u64 = input.as_slice().iter().map(|&v| v as u64).sum();
        let _ = reduce_sum(gpu, &sums);
        exact
    }
}

#[cfg(test)]
mod reduce_tests {
    use super::*;
    use crate::spec::GpuSpec;

    #[test]
    fn reduce_small_and_large() {
        let mut g = Gpu::new(GpuSpec::small());
        let a = g.to_device(&[1u32, 2, 3, 4]);
        assert_eq!(reduce_sum(&mut g, &a), 10);
        let big: Vec<u32> = (0..10_000).map(|i| i % 100).collect();
        let expect: u64 = big.iter().map(|&v| v as u64).sum();
        let b = g.to_device(&big);
        assert_eq!(reduce_sum(&mut g, &b), expect);
        let empty = g.to_device(&[] as &[u32]);
        assert_eq!(reduce_sum(&mut g, &empty), 0);
    }

    #[test]
    fn reduce_charges_kernels() {
        let mut g = Gpu::new(GpuSpec::small());
        let data = g.to_device(&vec![1u32; 5000]);
        let before = g.counters().launches;
        let _ = reduce_sum(&mut g, &data);
        assert!(g.counters().launches > before);
    }
}
