//! Hardware specification and cost model of the simulated GPU.

/// Static description of a simulated GPU.
///
/// Defaults approximate the NVIDIA Tesla V100 used in the paper. For
/// laptop-scale experiments the workload is scaled down (see
/// `nextdoor_graph::Dataset::generate`), so benches typically pair a scaled
/// workload with [`GpuSpec::scaled`] to keep the workload-to-machine ratio —
/// and therefore occupancy behaviour — similar to the paper's.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Maximum threads per block (CUDA limit: 1024).
    pub max_threads_per_block: usize,
    /// Maximum resident warps per SM (V100: 64).
    pub max_warps_per_sm: usize,
    /// Maximum resident blocks per SM (V100: 32).
    pub max_blocks_per_sm: usize,
    /// Shared memory per block in bytes (V100: 96 KiB max opt-in).
    pub shared_mem_per_block: usize,
    /// Device (global) memory capacity in bytes (paper's V100: 16 GiB).
    pub device_memory: usize,
    /// Core clock in GHz (V100: 1.38).
    pub clock_ghz: f64,
    /// Host-to-device interconnect bandwidth in GB/s (PCIe 3.0 x16: ~12).
    pub pcie_gbps: f64,
    /// Host worker threads used to execute the blocks of each launch
    /// concurrently. `0` resolves at device construction: the
    /// `NEXTDOOR_SIM_THREADS` environment variable if set, else the
    /// machine's available parallelism. `1` is the fully sequential path.
    /// Purely a host-side execution knob — counters, profiles and samples
    /// are bit-identical at every value (see `crate::launch`).
    pub host_threads: usize,
    /// Cost model constants.
    pub cost: CostModel,
}

impl GpuSpec {
    /// A V100-like configuration (the paper's testbed GPU).
    pub fn v100() -> Self {
        GpuSpec {
            num_sms: 80,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_mem_per_block: 96 * 1024,
            device_memory: 16 * (1 << 30),
            clock_ghz: 1.38,
            pcie_gbps: 12.0,
            host_threads: 0,
            cost: CostModel::default(),
        }
    }

    /// A V100 scaled down by `factor`, keeping per-SM characteristics.
    ///
    /// Pairing `Dataset::generate(s, ..)` with `GpuSpec::scaled(s * k)`
    /// keeps the workload-to-machine ratio near the paper's, so occupancy
    /// phenomena (e.g. the PPI rows of Table 4) reproduce at laptop scale.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn scaled(factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "factor must be in (0, 1]");
        let mut s = Self::v100();
        s.num_sms = ((s.num_sms as f64 * factor).round() as usize).max(1);
        s.device_memory = ((s.device_memory as f64 * factor) as usize).max(1 << 20);
        s
    }

    /// A small 8-SM configuration for unit tests: fast to simulate and still
    /// exhibits every modelled effect.
    pub fn small() -> Self {
        let mut s = Self::v100();
        s.num_sms = 8;
        s.device_memory = 1 << 28;
        s
    }

    /// Maximum resident threads per SM.
    pub fn max_threads_per_sm(&self) -> usize {
        self.max_warps_per_sm * crate::warp::WARP_SIZE
    }

    /// Number of blocks of `block_dim` threads and `shared_bytes` of shared
    /// memory that one SM can host concurrently — the minimum of the warp,
    /// block-slot and shared-memory limiters, at least 1. This is the
    /// occupancy arithmetic the launch path charges; it is public so
    /// launch-geometry planners (e.g. `nextdoor_core::tuning`) can predict
    /// a candidate configuration's occupancy before launching it.
    pub fn resident_blocks(&self, block_dim: usize, shared_bytes: usize) -> usize {
        let warps_per_block = block_dim.div_ceil(crate::warp::WARP_SIZE).max(1);
        let by_warps = self.max_warps_per_sm / warps_per_block;
        let by_blocks = self.max_blocks_per_sm;
        let by_shared = self
            .shared_mem_per_block
            .checked_div(shared_bytes)
            .unwrap_or(usize::MAX);
        by_warps.min(by_blocks).min(by_shared).max(1)
    }

    /// Theoretical achieved occupancy (resident warps over the SM's
    /// maximum) of blocks of `block_dim` threads each using `shared_bytes`
    /// of shared memory.
    ///
    /// ```
    /// use nextdoor_gpu::GpuSpec;
    /// let spec = GpuSpec::v100();
    /// // 1024-thread blocks: 32 warps each, 2 blocks resident = 64 warps.
    /// assert_eq!(spec.occupancy(1024, 0), 1.0);
    /// // Tiny blocks run into the per-SM block-slot limit.
    /// assert!(spec.occupancy(32, 0) < 1.0);
    /// ```
    pub fn occupancy(&self, block_dim: usize, shared_bytes: usize) -> f64 {
        let warps_per_block = block_dim.div_ceil(crate::warp::WARP_SIZE).max(1);
        let resident = (warps_per_block * self.resident_blocks(block_dim, shared_bytes))
            .min(self.max_warps_per_sm);
        resident as f64 / self.max_warps_per_sm as f64
    }

    /// Converts simulated cycles to milliseconds at this spec's clock.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.clock_ghz * 1e6)
    }

    /// Cycles needed to move `bytes` over the host interconnect.
    pub fn pcie_cycles(&self, bytes: usize) -> f64 {
        let seconds = bytes as f64 / (self.pcie_gbps * 1e9);
        seconds * self.clock_ghz * 1e9
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::v100()
    }
}

/// Cycle costs of the simulated operations.
///
/// `global_tx_cycles` is derived from V100 HBM2 bandwidth: ~900 GB/s over
/// 80 SMs at 1.38 GHz is ~3.9 cycles per 32-byte sector per SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per warp-level compute instruction.
    pub compute_cycles: f64,
    /// Cycles per 32-byte global-memory sector at full bandwidth.
    pub global_tx_cycles: f64,
    /// Raw global-memory latency in cycles (exposed at low occupancy).
    pub global_latency: f64,
    /// Cycles per warp-level shared-memory access.
    pub shared_cycles: f64,
    /// Cycles per warp shuffle.
    pub shfl_cycles: f64,
    /// Cycles per warp-level atomic operation (beyond its transaction).
    pub atomic_cycles: f64,
    /// Cycles charged for one counter-based RNG draw (a short hash chain).
    pub rand_cycles: f64,
    /// Fixed per-block scheduling overhead in cycles.
    pub block_overhead: f64,
    /// Fixed per-kernel-launch overhead in cycles (driver + dispatch).
    pub launch_overhead: f64,
    /// Cycles for a block-wide barrier (`__syncthreads`).
    pub syncthreads_cycles: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            compute_cycles: 1.0,
            global_tx_cycles: 4.0,
            global_latency: 400.0,
            shared_cycles: 2.0,
            shfl_cycles: 1.0,
            atomic_cycles: 4.0,
            rand_cycles: 8.0,
            block_overhead: 50.0,
            launch_overhead: 3000.0,
            syncthreads_cycles: 20.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_shape() {
        let s = GpuSpec::v100();
        assert_eq!(s.num_sms, 80);
        assert_eq!(s.max_threads_per_sm(), 2048);
    }

    #[test]
    fn scaled_reduces_sms() {
        let s = GpuSpec::scaled(0.1);
        assert_eq!(s.num_sms, 8);
        assert!(s.device_memory < GpuSpec::v100().device_memory);
    }

    #[test]
    fn scaled_never_reaches_zero() {
        let s = GpuSpec::scaled(0.001);
        assert!(s.num_sms >= 1);
    }

    #[test]
    #[should_panic(expected = "factor must be in (0, 1]")]
    fn scaled_rejects_out_of_range() {
        let _ = GpuSpec::scaled(1.5);
    }

    #[test]
    fn cycles_to_ms_uses_clock() {
        let s = GpuSpec::v100();
        let ms = s.cycles_to_ms(1.38e9);
        assert!((ms - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pcie_cycles_positive_and_monotone() {
        let s = GpuSpec::v100();
        assert!(s.pcie_cycles(1 << 20) > 0.0);
        assert!(s.pcie_cycles(2 << 20) > s.pcie_cycles(1 << 20));
    }
}
