//! A deterministic SIMT GPU simulator.
//!
//! The NextDoor paper's claims are statements about GPU micro-architectural
//! behaviour: memory-transaction coalescing, warp divergence, shared-memory
//! caching, and load balance across streaming multiprocessors (SMs). This
//! crate provides a *functional + cost-model* simulator that makes all of
//! those first-class, measurable quantities, so the transit-parallel engine
//! and its baselines can be compared the same way the paper compares them
//! with `nvprof`.
//!
//! # Model
//!
//! * Kernels execute **warp-synchronously**: every operation is issued for
//!   all 32 lanes of a warp at once ([`WarpCtx`]). Global-memory operations
//!   are coalesced into 32-byte sectors exactly as NVIDIA hardware counts
//!   transactions; shared-memory and shuffle operations are charged their
//!   (much smaller) fixed costs.
//! * User-defined per-lane code (the `next` function of a sampling
//!   application) records a [`LaneTrace`]; [`WarpCtx::replay`] aligns the 32
//!   traces position-by-position, detects divergence (lanes performing
//!   different kinds of operations, or finishing at different times), and
//!   charges serialised execution.
//! * Thread blocks are list-scheduled onto SMs ([`sched`]); the kernel's
//!   simulated time is the makespan, so load imbalance — the paper's central
//!   concern — directly lengthens simulated time. Low occupancy exposes
//!   global-memory latency instead of bandwidth.
//! * All nvprof-style metrics are accumulated in [`Counters`]: load/store
//!   transactions and requests, shared traffic, divergent branches,
//!   multiprocessor activity, store efficiency.
//!
//! The simulator is fully deterministic: kernels obtain randomness from the
//! counter-based generator in [`rng`], keyed by logical identifiers rather
//! than execution order. Because blocks are data-independent, [`Gpu::launch`]
//! executes them concurrently on a host worker pool (size controlled by
//! `GpuSpec::host_threads` / `NEXTDOOR_SIM_THREADS`) while reducing all
//! statistics in canonical block order, so every counter, profile record and
//! sampled output is bit-identical at any thread count — see [`launch`] for
//! the full argument.
//!
//! # Examples
//!
//! ```
//! use nextdoor_gpu::{Gpu, GpuSpec, LaunchConfig, WARP_SIZE};
//!
//! let mut gpu = Gpu::new(GpuSpec::small());
//! let src = gpu.to_device(&(0u32..128).collect::<Vec<_>>());
//! let dst = gpu.alloc::<u32>(128);
//! gpu.launch("double", LaunchConfig::grid1d(128, 64), |blk| {
//!     blk.for_each_warp(|w| {
//!         let idx = w.global_thread_ids();
//!         let mask = w.mask_where(|l| idx[l] < 128);
//!         let v = w.ld_global(&src, &idx, mask);
//!         let doubled = w.map(v, mask, |x| x * 2);
//!         w.st_global(&dst, &idx, doubled, mask);
//!     });
//! });
//! assert_eq!(dst.as_slice()[5], 10);
//! assert!(gpu.counters().gld_transactions > 0);
//! let _ = WARP_SIZE;
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod block;
pub mod counters;
pub mod fault;
pub mod host;
pub mod lane;
pub mod launch;
pub mod mem;
pub mod profile;
pub mod rng;
pub mod sched;
pub mod spec;
pub mod warp;

pub use block::BlockCtx;
pub use counters::{Counters, KernelStats};
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use host::{BlockShards, SyncSlice};
pub use lane::{LaneOp, LaneTrace};
pub use launch::{Gpu, LaunchConfig};
pub use mem::{DeviceBuffer, OutOfMemory};
pub use profile::{
    json_escape, kernel_anchor, summarize_kernels, write_chrome_trace, write_kernel_report,
    ChromeTraceWriter, KernelRecord, KernelSummary, Profile, ProfileEvent, TransferDir,
    TransferRecord,
};
pub use spec::{CostModel, GpuSpec};
pub use warp::{Mask, WarpCtx, WARP_SIZE};
