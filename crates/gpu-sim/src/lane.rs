//! Per-lane traces for user-defined code.
//!
//! The engine cannot express a sampling application's user-defined `next`
//! function in warp-vectorised form — it is arbitrary per-lane code (e.g.
//! node2vec's rejection-sampling loop runs a data-dependent number of
//! iterations). Instead, each lane records the operations it performed as a
//! [`LaneTrace`]; `replay_traces` then aligns the traces of the 32 lanes
//! position by position, coalescing memory operations that line up and
//! charging divergence where they do not — which is precisely how lock-step
//! SIMT hardware behaves.

use crate::warp::{SectorSet, WarpCtx, WARP_SIZE};

/// One operation performed by a single lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneOp {
    /// Global-memory read of `bytes` at virtual address `addr`.
    GlobalLoad {
        /// Virtual address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Global-memory write of `bytes` at virtual address `addr`.
    GlobalStore {
        /// Virtual address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// Shared-memory read.
    SharedLoad,
    /// Shared-memory write.
    SharedStore,
    /// Register read via warp shuffle.
    Shfl,
    /// `n` ALU instructions.
    Compute(u16),
    /// One counter-based RNG draw.
    Rand,
}

impl LaneOp {
    /// Discriminant used for divergence grouping: lanes at the same trace
    /// position executing different kinds of operation must serialise.
    fn kind(&self) -> u8 {
        match self {
            LaneOp::GlobalLoad { .. } => 0,
            LaneOp::GlobalStore { .. } => 1,
            LaneOp::SharedLoad => 2,
            LaneOp::SharedStore => 3,
            LaneOp::Shfl => 4,
            LaneOp::Compute(_) => 5,
            LaneOp::Rand => 6,
        }
    }
}

/// The sequence of operations one lane performed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneTrace {
    ops: Vec<LaneOp>,
}

impl LaneTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    #[inline]
    pub fn push(&mut self, op: LaneOp) {
        self.ops.push(op);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Clears the trace for reuse (keeps the allocation).
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[LaneOp] {
        &self.ops
    }
}

/// Replays 32 lane traces in lock-step against `warp`, charging coalesced
/// memory transactions, compute cycles and divergence.
pub(crate) fn replay_traces(warp: &mut WarpCtx<'_>, traces: &[LaneTrace; WARP_SIZE], mask: u32) {
    let max_len = (0..WARP_SIZE)
        .filter(|l| mask & (1 << l) != 0)
        .map(|l| traces[l].len())
        .max()
        .unwrap_or(0);
    let mut lanes_alive_prev = mask.count_ones();
    for pos in 0..max_len {
        // Collect the ops of lanes still alive at this position.
        let mut kinds_present = [false; 7];
        let mut lanes_alive = 0u32;
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 && pos < traces[l].len() {
                kinds_present[traces[l].ops[pos].kind() as usize] = true;
                lanes_alive += 1;
            }
        }
        // Lanes that ran out of ops while others continue: one divergence
        // event per drop-off point.
        if lanes_alive < lanes_alive_prev {
            warp.charge_divergence(2);
            lanes_alive_prev = lanes_alive;
        }
        let groups = kinds_present.iter().filter(|&&k| k).count() as u64;
        warp.charge_divergence(groups);
        // Charge each serialised group.
        for kind in 0..7u8 {
            if !kinds_present[kind as usize] {
                continue;
            }
            match kind {
                0 | 1 => {
                    // Global load/store group: coalesce across lanes.
                    let mut sectors = SectorSet::new();
                    let mut active = 0u64;
                    let mut bytes_req = 0u64;
                    for (l, trace) in traces.iter().enumerate() {
                        if mask & (1 << l) == 0 || pos >= trace.len() {
                            continue;
                        }
                        match trace.ops[pos] {
                            LaneOp::GlobalLoad { addr, bytes } if kind == 0 => {
                                sectors.insert_range(addr, bytes as u64);
                                bytes_req += bytes as u64;
                                active += 1;
                            }
                            LaneOp::GlobalStore { addr, bytes } if kind == 1 => {
                                sectors.insert_range(addr, bytes as u64);
                                bytes_req += bytes as u64;
                                active += 1;
                            }
                            _ => {}
                        }
                    }
                    if active == 0 {
                        continue;
                    }
                    let tx = sectors.count();
                    let c = &mut warp.stats.counters;
                    if kind == 0 {
                        c.gld_requests += 1;
                        c.gld_transactions += tx;
                        c.gld_bytes_requested += bytes_req;
                    } else {
                        c.gst_requests += 1;
                        c.gst_transactions += tx;
                        c.gst_bytes_requested += bytes_req;
                    }
                    warp.stats.mem_bw_cycles += tx as f64 * warp.cost.global_tx_cycles;
                    warp.stats.mem_requests += 1;
                }
                2 => {
                    warp.stats.counters.shared_loads += 1;
                    warp.stats.pipeline_cycles += warp.cost.shared_cycles;
                }
                3 => {
                    warp.stats.counters.shared_stores += 1;
                    warp.stats.pipeline_cycles += warp.cost.shared_cycles;
                }
                4 => {
                    warp.stats.counters.shuffles += 1;
                    warp.stats.pipeline_cycles += warp.cost.shfl_cycles;
                }
                5 => {
                    // Compute group: SIMT executes the widest lane's count.
                    let mut max_n = 0u16;
                    let mut draws = 0u64;
                    for (l, trace) in traces.iter().enumerate() {
                        if mask & (1 << l) != 0 && pos < trace.len() {
                            if let LaneOp::Compute(n) = trace.ops[pos] {
                                max_n = max_n.max(n);
                                draws += 1;
                            }
                        }
                    }
                    let _ = draws;
                    warp.charge_compute(max_n as u64);
                }
                6 => {
                    let mut draws = 0u64;
                    for (l, trace) in traces.iter().enumerate() {
                        if mask & (1 << l) != 0
                            && pos < trace.len()
                            && matches!(trace.ops[pos], LaneOp::Rand)
                        {
                            draws += 1;
                        }
                    }
                    warp.stats.counters.rand_draws += draws;
                    warp.stats.pipeline_cycles += warp.cost.rand_cycles;
                }
                _ => unreachable!(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_in_order() {
        let mut t = LaneTrace::new();
        assert!(t.is_empty());
        t.push(LaneOp::Compute(3));
        t.push(LaneOp::Rand);
        assert_eq!(t.len(), 2);
        assert_eq!(t.ops()[0], LaneOp::Compute(3));
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn kind_discriminants_are_distinct() {
        let ops = [
            LaneOp::GlobalLoad { addr: 0, bytes: 4 },
            LaneOp::GlobalStore { addr: 0, bytes: 4 },
            LaneOp::SharedLoad,
            LaneOp::SharedStore,
            LaneOp::Shfl,
            LaneOp::Compute(1),
            LaneOp::Rand,
        ];
        let mut kinds: Vec<u8> = ops.iter().map(|o| o.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), ops.len());
    }
}
