//! Thread-block execution context.

use crate::counters::Counters;
use crate::spec::{CostModel, GpuSpec};
use crate::warp::{SharedArray, WarpCtx, WarpStats, WARP_SIZE};

/// Accumulated cost of one thread block.
#[derive(Debug, Default, Clone)]
pub(crate) struct BlockStats {
    pub pipeline_cycles: f64,
    pub mem_bw_cycles: f64,
    pub mem_requests: u64,
    pub counters: Counters,
    pub shared_words_used: usize,
}

/// Execution context of one thread block.
///
/// Warps inside a block run to completion one after another; cross-warp
/// communication through shared memory must therefore be structured in
/// *phases* separated by [`BlockCtx::syncthreads`] — e.g. all warps
/// cooperatively load an adjacency list, barrier, then all warps sample
/// from it. This matches how the NextDoor kernels are organised.
pub struct BlockCtx<'a> {
    /// Index of this block within the grid.
    pub block_idx: usize,
    /// Threads per block.
    pub block_dim: usize,
    pub(crate) cost: &'a CostModel,
    pub(crate) spec: &'a GpuSpec,
    pub(crate) shared: Vec<u32>,
    pub(crate) shared_used: usize,
    pub(crate) stats: BlockStats,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(block_idx: usize, block_dim: usize, spec: &'a GpuSpec) -> Self {
        BlockCtx {
            block_idx,
            block_dim,
            cost: &spec.cost,
            spec,
            shared: Vec::new(),
            shared_used: 0,
            stats: BlockStats::default(),
        }
    }

    /// Number of warps in this block.
    pub fn num_warps(&self) -> usize {
        self.block_dim.div_ceil(WARP_SIZE)
    }

    /// Attempts to allocate `words` 32-bit words of shared memory.
    ///
    /// Returns `None` when the block's shared-memory budget would be
    /// exceeded — the caller then falls back to global memory, exactly like
    /// NextDoor "transparently loads neighbors from global memory" when an
    /// adjacency list does not fit (§6.1.2).
    pub fn shared_alloc(&mut self, words: usize) -> Option<SharedArray> {
        let bytes = (self.shared_used + words) * 4;
        if bytes > self.spec.shared_mem_per_block {
            return None;
        }
        let offset = self.shared_used;
        self.shared_used += words;
        if self.shared.len() < self.shared_used {
            self.shared.resize(self.shared_used, 0);
        }
        self.stats.shared_words_used = self.stats.shared_words_used.max(self.shared_used);
        Some(SharedArray { offset, len: words })
    }

    /// Remaining shared-memory words available to this block.
    pub fn shared_words_free(&self) -> usize {
        self.spec.shared_mem_per_block / 4 - self.shared_used
    }

    /// Runs `f` once per warp of the block, accumulating each warp's cost.
    pub fn for_each_warp(&mut self, mut f: impl FnMut(&mut WarpCtx<'_>)) {
        for w in 0..self.num_warps() {
            self.with_warp(w, &mut f);
        }
    }

    /// Runs `f` for a single warp `w` of the block.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.num_warps()`.
    pub fn with_warp(&mut self, w: usize, f: &mut impl FnMut(&mut WarpCtx<'_>)) {
        assert!(w < self.num_warps(), "warp index out of range");
        let mut ws = WarpStats::default();
        {
            let mut ctx = WarpCtx {
                block_idx: self.block_idx,
                warp_in_block: w,
                block_dim: self.block_dim,
                cost: self.cost,
                shared: &mut self.shared,
                stats: &mut ws,
            };
            f(&mut ctx);
        }
        self.stats.pipeline_cycles += ws.pipeline_cycles;
        self.stats.mem_bw_cycles += ws.mem_bw_cycles;
        self.stats.mem_requests += ws.mem_requests;
        self.stats.counters.merge(&ws.counters);
    }

    /// Block-wide barrier (`__syncthreads`).
    pub fn syncthreads(&mut self) {
        self.stats.counters.barriers += 1;
        self.stats.pipeline_cycles += self.cost.syncthreads_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;

    #[test]
    fn warp_count_rounds_up() {
        let spec = GpuSpec::small();
        let b = BlockCtx::new(0, 33, &spec);
        assert_eq!(b.num_warps(), 2);
        let b = BlockCtx::new(0, 32, &spec);
        assert_eq!(b.num_warps(), 1);
    }

    #[test]
    fn shared_alloc_respects_budget() {
        let mut spec = GpuSpec::small();
        spec.shared_mem_per_block = 64; // 16 words
        let mut b = BlockCtx::new(0, 32, &spec);
        let a = b.shared_alloc(10).expect("fits");
        assert_eq!(a.len(), 10);
        assert_eq!(b.shared_words_free(), 6);
        assert!(b.shared_alloc(10).is_none(), "over budget");
        assert!(b.shared_alloc(6).is_some(), "exactly fits");
    }

    #[test]
    fn for_each_warp_visits_all() {
        let spec = GpuSpec::small();
        let mut b = BlockCtx::new(3, 128, &spec);
        let mut seen = Vec::new();
        b.for_each_warp(|w| {
            assert_eq!(w.block_idx, 3);
            seen.push(w.warp_in_block);
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn warp_costs_accumulate_into_block() {
        let spec = GpuSpec::small();
        let mut b = BlockCtx::new(0, 64, &spec);
        b.for_each_warp(|w| w.charge_compute(5));
        assert_eq!(b.stats.counters.compute_ops, 10);
        assert!(b.stats.pipeline_cycles >= 10.0);
    }

    #[test]
    fn syncthreads_counts_barrier() {
        let spec = GpuSpec::small();
        let mut b = BlockCtx::new(0, 64, &spec);
        b.syncthreads();
        assert_eq!(b.stats.counters.barriers, 1);
    }
}
