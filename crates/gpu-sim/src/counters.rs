//! nvprof-style performance counters.

/// Counters accumulated over one or more kernel launches.
///
/// Field names mirror the nvprof metrics the paper reports (§8.2.1/§8.2.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Counters {
    /// Warp-level global load requests.
    pub gld_requests: u64,
    /// 32-byte global load transactions (sectors).
    pub gld_transactions: u64,
    /// Bytes actually requested by global loads (for efficiency metrics).
    pub gld_bytes_requested: u64,
    /// Warp-level global store requests.
    pub gst_requests: u64,
    /// 32-byte global store transactions (sectors).
    pub gst_transactions: u64,
    /// Bytes actually requested by global stores.
    pub gst_bytes_requested: u64,
    /// Warp-level atomic operations on global memory.
    pub atomics: u64,
    /// Warp-level shared-memory loads.
    pub shared_loads: u64,
    /// Warp-level shared-memory stores.
    pub shared_stores: u64,
    /// Warp shuffle operations.
    pub shuffles: u64,
    /// Warp-level compute instructions.
    pub compute_ops: u64,
    /// RNG draws.
    pub rand_draws: u64,
    /// Divergent branch events (extra serialised groups within a warp).
    pub divergent_branches: u64,
    /// Block-wide barriers executed.
    pub barriers: u64,
    /// Kernel launches.
    pub launches: u64,
    /// Host-to-device bytes transferred.
    pub htod_bytes: u64,
    /// Device-to-host bytes transferred.
    pub dtoh_bytes: u64,
    /// Total simulated cycles (sum of kernel makespans + charged transfers).
    pub cycles: f64,
    /// Sum over launches of (busy SM cycles).
    pub sm_busy_cycles: f64,
    /// Sum over launches of (makespan × number of SMs).
    pub sm_total_cycles: f64,
}

impl Counters {
    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &Counters) {
        self.gld_requests += other.gld_requests;
        self.gld_transactions += other.gld_transactions;
        self.gld_bytes_requested += other.gld_bytes_requested;
        self.gst_requests += other.gst_requests;
        self.gst_transactions += other.gst_transactions;
        self.gst_bytes_requested += other.gst_bytes_requested;
        self.atomics += other.atomics;
        self.shared_loads += other.shared_loads;
        self.shared_stores += other.shared_stores;
        self.shuffles += other.shuffles;
        self.compute_ops += other.compute_ops;
        self.rand_draws += other.rand_draws;
        self.divergent_branches += other.divergent_branches;
        self.barriers += other.barriers;
        self.launches += other.launches;
        self.htod_bytes += other.htod_bytes;
        self.dtoh_bytes += other.dtoh_bytes;
        self.cycles += other.cycles;
        self.sm_busy_cycles += other.sm_busy_cycles;
        self.sm_total_cycles += other.sm_total_cycles;
    }

    /// Global-memory *store efficiency*: requested bytes over transferred
    /// bytes, as a percentage. 100% means perfectly coalesced stores
    /// (paper's Table 4).
    pub fn gst_efficiency(&self) -> f64 {
        if self.gst_transactions == 0 {
            100.0
        } else {
            100.0 * self.gst_bytes_requested as f64 / (self.gst_transactions as f64 * 32.0)
        }
    }

    /// Global-memory *load efficiency*, analogous to [`Self::gst_efficiency`].
    pub fn gld_efficiency(&self) -> f64 {
        if self.gld_transactions == 0 {
            100.0
        } else {
            100.0 * self.gld_bytes_requested as f64 / (self.gld_transactions as f64 * 32.0)
        }
    }

    /// *Multiprocessor activity*: average SM busy fraction over the whole
    /// execution, as a percentage (paper's Table 4).
    pub fn multiprocessor_activity(&self) -> f64 {
        if self.sm_total_cycles == 0.0 {
            0.0
        } else {
            100.0 * self.sm_busy_cycles / self.sm_total_cycles
        }
    }

    /// Counter deltas since `before` (which must be an earlier snapshot of
    /// the same accumulator).
    pub fn diff(&self, before: &Counters) -> Counters {
        Counters {
            gld_requests: self.gld_requests - before.gld_requests,
            gld_transactions: self.gld_transactions - before.gld_transactions,
            gld_bytes_requested: self.gld_bytes_requested - before.gld_bytes_requested,
            gst_requests: self.gst_requests - before.gst_requests,
            gst_transactions: self.gst_transactions - before.gst_transactions,
            gst_bytes_requested: self.gst_bytes_requested - before.gst_bytes_requested,
            atomics: self.atomics - before.atomics,
            shared_loads: self.shared_loads - before.shared_loads,
            shared_stores: self.shared_stores - before.shared_stores,
            shuffles: self.shuffles - before.shuffles,
            compute_ops: self.compute_ops - before.compute_ops,
            rand_draws: self.rand_draws - before.rand_draws,
            divergent_branches: self.divergent_branches - before.divergent_branches,
            barriers: self.barriers - before.barriers,
            launches: self.launches - before.launches,
            htod_bytes: self.htod_bytes - before.htod_bytes,
            dtoh_bytes: self.dtoh_bytes - before.dtoh_bytes,
            cycles: self.cycles - before.cycles,
            sm_busy_cycles: self.sm_busy_cycles - before.sm_busy_cycles,
            sm_total_cycles: self.sm_total_cycles - before.sm_total_cycles,
        }
    }

    /// Total L2 read transactions. In this model every global load sector
    /// passes through L2, matching how the paper uses the
    /// `l2_read_transactions` metric to compare NextDoor with SP (Fig. 8).
    pub fn l2_read_transactions(&self) -> u64 {
        self.gld_transactions
    }
}

/// Per-launch statistics returned by [`crate::Gpu::launch`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelStats {
    /// Name the kernel was launched under.
    pub name: String,
    /// Number of thread blocks.
    pub blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Simulated makespan of this launch in cycles.
    pub cycles: f64,
    /// Counter deltas attributable to this launch.
    pub counters: Counters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters {
            gld_transactions: 5,
            cycles: 10.0,
            ..Counters::default()
        };
        let b = Counters {
            gld_transactions: 7,
            cycles: 2.5,
            ..Counters::default()
        };
        a.merge(&b);
        assert_eq!(a.gld_transactions, 12);
        assert!((a.cycles - 12.5).abs() < 1e-12);
    }

    #[test]
    fn store_efficiency_bounds() {
        let mut c = Counters::default();
        assert_eq!(c.gst_efficiency(), 100.0);
        c.gst_transactions = 4;
        c.gst_bytes_requested = 128;
        assert!((c.gst_efficiency() - 100.0).abs() < 1e-9);
        c.gst_transactions = 8; // same bytes, twice the sectors
        assert!((c.gst_efficiency() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn activity_ratio() {
        let c = Counters {
            sm_busy_cycles: 50.0,
            sm_total_cycles: 100.0,
            ..Counters::default()
        };
        assert!((c.multiprocessor_activity() - 50.0).abs() < 1e-9);
        assert_eq!(Counters::default().multiprocessor_activity(), 0.0);
    }

    #[test]
    fn l2_reads_track_gld() {
        let c = Counters {
            gld_transactions: 42,
            ..Counters::default()
        };
        assert_eq!(c.l2_read_transactions(), 42);
    }
}
