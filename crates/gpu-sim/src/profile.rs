//! Per-kernel profiling and trace export.
//!
//! The paper argues every claim through per-kernel `nvprof` hardware
//! counters (Table 4, Figures 6-10): load/store transactions of *this*
//! kernel, multiprocessor activity of *this* launch. The global
//! [`Counters`] accumulator cannot attribute cost that way, so the device
//! additionally keeps a bounded [`Profile`] buffer: every [`crate::Gpu::launch`]
//! appends a [`KernelRecord`] (launch geometry, simulated interval, counter
//! deltas, occupancy, per-SM busy time, shared-memory footprint) and every
//! host↔device transfer appends a [`TransferRecord`].
//!
//! Two exporters turn a profile into artifacts:
//!
//! * [`write_kernel_report`] — a per-kernel JSON report (the Table 4 view);
//! * [`write_chrome_trace`] — a `chrome://tracing` / Perfetto event file
//!   laid out by SM, with transfers on a dedicated PCIe track.
//!
//! # Conservation
//!
//! The buffer is bounded: past [`Profile::capacity`] events the oldest
//! records are folded into an *evicted* aggregate instead of being dropped,
//! so [`Profile::total_counters`] always reproduces the device's global
//! [`Counters`] **exactly** (bit-identical `f64` sums, because events are
//! folded in the same chronological order the global accumulator saw them).
//! Tests assert this conservation property for every engine.

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::path::Path;

use crate::counters::Counters;
use crate::spec::GpuSpec;

/// Default bound on buffered profile events.
pub const DEFAULT_PROFILE_CAPACITY: usize = 1 << 16;

/// One kernel launch, as recorded by [`crate::Gpu::launch`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelRecord {
    /// Name the kernel was launched under.
    pub name: String,
    /// Monotonic launch index on the device.
    pub launch_idx: u64,
    /// Number of thread blocks.
    pub grid_dim: usize,
    /// Threads per block.
    pub block_dim: usize,
    /// Device-global cycle count when the launch started.
    pub start_cycles: f64,
    /// Simulated makespan of the launch in cycles.
    pub cycles: f64,
    /// Counter deltas attributable to this launch.
    pub counters: Counters,
    /// Achieved occupancy: resident warps over the SM's warp capacity,
    /// in `[0, 1]`.
    pub occupancy: f64,
    /// Busy cycles of each SM during this launch.
    pub per_sm_busy: Vec<f64>,
    /// Peak shared memory used by any block, in bytes.
    pub shared_mem_bytes: usize,
}

impl KernelRecord {
    /// Busy fraction of the SMs over this launch's makespan, as a
    /// percentage (the per-launch `multiprocessor_activity`).
    pub fn activity(&self) -> f64 {
        self.counters.multiprocessor_activity()
    }
}

/// Direction of a host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Host to device.
    HtoD,
    /// Device to host.
    DtoH,
}

/// One host↔device transfer, as recorded by the `charge_*` paths.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRecord {
    /// Direction of the transfer.
    pub dir: TransferDir,
    /// Bytes moved.
    pub bytes: u64,
    /// Device-global cycle count when the transfer started.
    pub start_cycles: f64,
    /// Cycles charged (zero while transfer charging is disabled).
    pub cycles: f64,
}

impl TransferRecord {
    /// The counter deltas this transfer contributed to the global
    /// accumulator.
    pub fn as_counters(&self) -> Counters {
        let mut c = Counters {
            cycles: self.cycles,
            ..Counters::default()
        };
        match self.dir {
            TransferDir::HtoD => c.htod_bytes = self.bytes,
            TransferDir::DtoH => c.dtoh_bytes = self.bytes,
        }
        c
    }
}

/// A profile event: a kernel launch or a transfer, in chronological order.
// Kernel events dominate the ring (transfers happen a handful of times per
// run), so boxing the large variant would cost an allocation per event to
// shrink the rare one — not worth it.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileEvent {
    /// A kernel launch.
    Kernel(KernelRecord),
    /// A host↔device transfer.
    Transfer(TransferRecord),
}

impl ProfileEvent {
    /// The counter deltas this event contributed to the global accumulator.
    pub fn counters(&self) -> Counters {
        match self {
            ProfileEvent::Kernel(k) => k.counters,
            ProfileEvent::Transfer(t) => t.as_counters(),
        }
    }
}

/// Bounded per-device profile buffer.
///
/// Events beyond [`Profile::capacity`] evict the oldest event into an
/// aggregate (see the module docs on conservation).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    capacity: usize,
    events: VecDeque<ProfileEvent>,
    evicted: Counters,
    evicted_events: u64,
}

impl Default for Profile {
    fn default() -> Self {
        Profile::with_capacity(DEFAULT_PROFILE_CAPACITY)
    }
}

impl Profile {
    /// Creates a buffer bounded at `capacity` events (at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Profile {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            evicted: Counters::default(),
            evicted_events: 0,
        }
    }

    /// The event bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ProfileEvent> {
        self.events.iter()
    }

    /// Buffered kernel launches, oldest first.
    pub fn kernels(&self) -> impl Iterator<Item = &KernelRecord> {
        self.events.iter().filter_map(|e| match e {
            ProfileEvent::Kernel(k) => Some(k),
            ProfileEvent::Transfer(_) => None,
        })
    }

    /// Buffered transfers, oldest first.
    pub fn transfers(&self) -> impl Iterator<Item = &TransferRecord> {
        self.events.iter().filter_map(|e| match e {
            ProfileEvent::Transfer(t) => Some(t),
            ProfileEvent::Kernel(_) => None,
        })
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events folded into the evicted aggregate after the buffer filled.
    pub fn evicted_events(&self) -> u64 {
        self.evicted_events
    }

    /// Counter deltas of all evicted events.
    pub fn evicted_counters(&self) -> &Counters {
        &self.evicted
    }

    /// Sum of every event recorded since the last reset — evicted and
    /// buffered, in chronological order. Equals the device's global
    /// [`Counters`] exactly.
    pub fn total_counters(&self) -> Counters {
        let mut total = self.evicted;
        for e in &self.events {
            total.merge(&e.counters());
        }
        total
    }

    pub(crate) fn push(&mut self, event: ProfileEvent) {
        if self.events.len() == self.capacity {
            if let Some(old) = self.events.pop_front() {
                self.evicted.merge(&old.counters());
                self.evicted_events += 1;
            }
        }
        self.events.push_back(event);
    }

    pub(crate) fn clear(&mut self) {
        self.events.clear();
        self.evicted = Counters::default();
        self.evicted_events = 0;
    }

    /// Folds another profile's history into this one, oldest first (used
    /// when rebounding the buffer).
    pub(crate) fn absorb(&mut self, other: Profile) {
        self.evicted.merge(&other.evicted);
        self.evicted_events += other.evicted_events;
        for e in other.events {
            self.push(e);
        }
    }
}

/// Whole-profile aggregate for one kernel name, as reported by
/// [`write_kernel_report`] (the per-kernel Table 4 view).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Launches under this name.
    pub launches: u64,
    /// Total simulated cycles across those launches.
    pub cycles: f64,
    /// Summed counter deltas.
    pub counters: Counters,
    /// Launch-averaged achieved occupancy, in `[0, 1]`.
    pub avg_occupancy: f64,
    /// Peak shared memory of any launch, in bytes.
    pub max_shared_mem_bytes: usize,
}

/// Aggregates a profile's kernel records by name, ordered by total cycles
/// (descending). Deterministic: ties keep first-launch order.
pub fn summarize_kernels(profile: &Profile) -> Vec<KernelSummary> {
    let mut order: Vec<KernelSummary> = Vec::new();
    for k in profile.kernels() {
        let idx = match order.iter().position(|s| s.name == k.name) {
            Some(i) => i,
            None => {
                order.push(KernelSummary {
                    name: k.name.clone(),
                    ..KernelSummary::default()
                });
                order.len() - 1
            }
        };
        let entry = &mut order[idx];
        entry.launches += 1;
        entry.cycles += k.cycles;
        entry.counters.merge(&k.counters);
        entry.avg_occupancy += k.occupancy;
        entry.max_shared_mem_bytes = entry.max_shared_mem_bytes.max(k.shared_mem_bytes);
    }
    for s in &mut order {
        if s.launches > 0 {
            s.avg_occupancy /= s.launches as f64;
        }
    }
    order.sort_by(|a, b| b.cycles.total_cmp(&a.cycles));
    order
}

/// Escapes a string for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). Exposed so higher layers emitting
/// hand-written JSON (the serving tier's exporters) escape identically.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn counters_json(c: &Counters) -> String {
    format!(
        "{{\"gld_requests\":{},\"gld_transactions\":{},\"gst_requests\":{},\
         \"gst_transactions\":{},\"gld_efficiency\":{:.2},\"gst_efficiency\":{:.2},\
         \"atomics\":{},\"shared_loads\":{},\"shared_stores\":{},\"shuffles\":{},\
         \"compute_ops\":{},\"rand_draws\":{},\"divergent_branches\":{},\"barriers\":{},\
         \"launches\":{},\"htod_bytes\":{},\"dtoh_bytes\":{},\"cycles\":{:.3},\
         \"multiprocessor_activity\":{:.2}}}",
        c.gld_requests,
        c.gld_transactions,
        c.gst_requests,
        c.gst_transactions,
        c.gld_efficiency(),
        c.gst_efficiency(),
        c.atomics,
        c.shared_loads,
        c.shared_stores,
        c.shuffles,
        c.compute_ops,
        c.rand_draws,
        c.divergent_branches,
        c.barriers,
        c.launches,
        c.htod_bytes,
        c.dtoh_bytes,
        c.cycles,
        c.multiprocessor_activity(),
    )
}

/// Writes the per-kernel JSON report: one entry per kernel name with its
/// launch count, simulated time, counter deltas and derived nvprof-style
/// metrics, plus transfer totals, the evicted aggregate and the exact
/// whole-run totals.
pub fn write_kernel_report(path: &Path, spec: &GpuSpec, profile: &Profile) -> io::Result<()> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(f, "{{")?;
    writeln!(
        f,
        "  \"device\": {{\"num_sms\": {}, \"clock_ghz\": {}}},",
        spec.num_sms, spec.clock_ghz
    )?;
    writeln!(f, "  \"kernels\": [")?;
    let summaries = summarize_kernels(profile);
    for (i, s) in summaries.iter().enumerate() {
        let comma = if i + 1 < summaries.len() { "," } else { "" };
        writeln!(
            f,
            "    {{\"name\":\"{}\",\"launches\":{},\"cycles\":{:.3},\"ms\":{:.6},\
             \"avg_occupancy\":{:.4},\"max_shared_mem_bytes\":{},\"counters\":{}}}{comma}",
            json_escape(&s.name),
            s.launches,
            s.cycles,
            spec.cycles_to_ms(s.cycles),
            s.avg_occupancy,
            s.max_shared_mem_bytes,
            counters_json(&s.counters),
        )?;
    }
    writeln!(f, "  ],")?;
    let (mut htod, mut dtoh, mut tcycles, mut tcount) = (0u64, 0u64, 0.0f64, 0u64);
    for t in profile.transfers() {
        match t.dir {
            TransferDir::HtoD => htod += t.bytes,
            TransferDir::DtoH => dtoh += t.bytes,
        }
        tcycles += t.cycles;
        tcount += 1;
    }
    writeln!(
        f,
        "  \"transfers\": {{\"count\":{tcount},\"htod_bytes\":{htod},\"dtoh_bytes\":{dtoh},\
         \"cycles\":{tcycles:.3}}},"
    )?;
    writeln!(
        f,
        "  \"evicted\": {{\"events\":{},\"counters\":{}}},",
        profile.evicted_events(),
        counters_json(profile.evicted_counters()),
    )?;
    writeln!(
        f,
        "  \"totals\": {}",
        counters_json(&profile.total_counters())
    )?;
    writeln!(f, "}}")?;
    f.flush()
}

/// Incremental writer for `chrome://tracing` / Perfetto event files.
///
/// [`write_chrome_trace`] lays down one process per device with an SM lane
/// per thread; higher layers — the serving tier's fleet timeline — reuse
/// the same writer to add their own tracks (batcher, scheduler, replicas)
/// in the *same* file and emit flow events linking a serving-tier span to
/// the kernel slice it launched, addressed by launch index via
/// [`kernel_anchor`]. Events may be appended in any order; trace viewers
/// sort by timestamp.
pub struct ChromeTraceWriter {
    f: io::BufWriter<std::fs::File>,
    first: bool,
}

impl ChromeTraceWriter {
    /// Opens `path` and writes the trace header.
    pub fn create(path: &Path) -> io::Result<Self> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(ChromeTraceWriter { f, first: true })
    }

    /// Appends one raw JSON event object (no trailing comma); the writer
    /// handles separators. Escape hatch for event shapes without a typed
    /// helper below.
    pub fn raw_event(&mut self, json: &str) -> io::Result<()> {
        if !self.first {
            writeln!(self.f, ",")?;
        }
        self.first = false;
        write!(self.f, "{json}")
    }

    /// Names the process (track group) `pid`.
    pub fn process_name(&mut self, pid: usize, name: &str) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ))
    }

    /// Names thread lane `tid` of process `pid`.
    pub fn thread_name(&mut self, pid: usize, tid: usize, name: &str) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(name)
        ))
    }

    /// A complete (`"ph":"X"`) duration slice. `args_json` must be a full
    /// JSON object (pass `"{}"` for none).
    pub fn complete(
        &mut self,
        pid: usize,
        tid: usize,
        ts_us: f64,
        dur_us: f64,
        name: &str,
        args_json: &str,
    ) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3},\
             \"dur\":{dur_us:.3},\"name\":\"{}\",\"args\":{args_json}}}",
            json_escape(name)
        ))
    }

    /// A thread-scoped instant (`"ph":"i"`) marker.
    pub fn instant(
        &mut self,
        pid: usize,
        tid: usize,
        ts_us: f64,
        name: &str,
        args_json: &str,
    ) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3},\
             \"name\":\"{}\",\"args\":{args_json}}}",
            json_escape(name)
        ))
    }

    /// A counter (`"ph":"C"`) sample: renders `series` as a stacked area
    /// chart named `name` under process `pid`.
    pub fn counter(
        &mut self,
        pid: usize,
        ts_us: f64,
        name: &str,
        series: &str,
        value: f64,
    ) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts_us:.3},\"name\":\"{}\",\
             \"args\":{{\"{}\":{value:.3}}}}}",
            json_escape(name),
            json_escape(series)
        ))
    }

    /// Starts a flow arrow (`"ph":"s"`) with identity `id` at the given
    /// slice. Pair with [`ChromeTraceWriter::flow_finish`] under the same
    /// `id` to draw the link.
    pub fn flow_start(&mut self, id: u64, pid: usize, tid: usize, ts_us: f64) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"s\",\"cat\":\"link\",\"name\":\"launch-link\",\"id\":{id},\
             \"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3}}}"
        ))
    }

    /// Ends flow arrow `id` at the given slice (binds to the enclosing
    /// slice, `"bp":"e"`).
    pub fn flow_finish(&mut self, id: u64, pid: usize, tid: usize, ts_us: f64) -> io::Result<()> {
        self.raw_event(&format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"link\",\"name\":\"launch-link\",\"id\":{id},\
             \"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.3}}}"
        ))
    }

    /// Lays out one device as process `pid`: an SM lane per thread carrying
    /// the kernel launches whose blocks kept it busy (duration = that SM's
    /// busy cycles), and a dedicated `PCIe` lane carrying the transfers.
    /// Timestamps are the device-global simulated time in microseconds.
    pub fn device(
        &mut self,
        pid: usize,
        label: &str,
        spec: &GpuSpec,
        profile: &Profile,
    ) -> io::Result<()> {
        let to_us = |cycles: f64| cycles / (spec.clock_ghz * 1e3);
        self.process_name(pid, label)?;
        for sm in 0..spec.num_sms {
            self.thread_name(pid, sm, &format!("SM {sm}"))?;
        }
        let pcie_tid = spec.num_sms;
        self.thread_name(pid, pcie_tid, "PCIe")?;
        for event in profile.events() {
            match event {
                ProfileEvent::Kernel(k) => {
                    for (sm, &busy) in k.per_sm_busy.iter().enumerate() {
                        if busy <= 0.0 {
                            continue;
                        }
                        self.complete(
                            pid,
                            sm,
                            to_us(k.start_cycles),
                            to_us(busy),
                            &k.name,
                            &format!(
                                "{{\"launch\":{},\"grid\":{},\"block\":{},\
                                 \"occupancy\":{:.3},\"gld_transactions\":{},\
                                 \"gst_transactions\":{},\"shared_mem_bytes\":{}}}",
                                k.launch_idx,
                                k.grid_dim,
                                k.block_dim,
                                k.occupancy,
                                k.counters.gld_transactions,
                                k.counters.gst_transactions,
                                k.shared_mem_bytes,
                            ),
                        )?;
                    }
                }
                ProfileEvent::Transfer(t) => {
                    let name = match t.dir {
                        TransferDir::HtoD => "HtoD",
                        TransferDir::DtoH => "DtoH",
                    };
                    self.complete(
                        pid,
                        pcie_tid,
                        to_us(t.start_cycles),
                        to_us(t.cycles),
                        name,
                        &format!("{{\"bytes\":{}}}", t.bytes),
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Writes the trace footer and flushes the file.
    pub fn finish(mut self) -> io::Result<()> {
        writeln!(self.f)?;
        writeln!(self.f, "]}}")?;
        self.f.flush()
    }
}

/// Locates the kernel slice a span-link flow should land on: the first
/// retained kernel record whose `launch_idx` falls in the half-open range
/// `[range.0, range.1)`, returned as `(launch_idx, sm_lane, start_cycles)`
/// where `sm_lane` is the first SM lane rendering a slice for it. `None`
/// when the range kept no kernel (all evicted from the bounded ring, or
/// the range is empty).
pub fn kernel_anchor(profile: &Profile, range: (u64, u64)) -> Option<(u64, usize, f64)> {
    profile
        .kernels()
        .filter(|k| k.launch_idx >= range.0 && k.launch_idx < range.1)
        .min_by_key(|k| k.launch_idx)
        .and_then(|k| {
            let sm = k.per_sm_busy.iter().position(|&b| b > 0.0)?;
            Some((k.launch_idx, sm, k.start_cycles))
        })
}

/// Writes a `chrome://tracing` / Perfetto event file.
///
/// Each device is a process; each SM is a thread lane carrying the
/// kernel launches whose blocks kept it busy (duration = that SM's busy
/// cycles), and a dedicated `PCIe` lane carries the transfers. Timestamps
/// are the device-global simulated time converted to microseconds.
pub fn write_chrome_trace(
    path: &Path,
    spec: &GpuSpec,
    devices: &[(&str, &Profile)],
) -> io::Result<()> {
    let mut w = ChromeTraceWriter::create(path)?;
    for (pid, (label, profile)) in devices.iter().enumerate() {
        w.device(pid, label, spec, profile)?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str, idx: u64, cycles: f64, gld: u64) -> KernelRecord {
        KernelRecord {
            name: name.to_string(),
            launch_idx: idx,
            grid_dim: 2,
            block_dim: 64,
            start_cycles: idx as f64 * 100.0,
            cycles,
            counters: Counters {
                gld_transactions: gld,
                cycles,
                launches: 1,
                ..Counters::default()
            },
            occupancy: 0.5,
            per_sm_busy: vec![cycles, cycles / 2.0],
            shared_mem_bytes: 128,
        }
    }

    #[test]
    fn eviction_preserves_totals() {
        let mut p = Profile::with_capacity(2);
        for i in 0..5 {
            p.push(ProfileEvent::Kernel(kernel("k", i, 10.0, 3)));
        }
        assert_eq!(p.len(), 2);
        assert_eq!(p.evicted_events(), 3);
        let total = p.total_counters();
        assert_eq!(total.gld_transactions, 15);
        assert_eq!(total.launches, 5);
        assert!((total.cycles - 50.0).abs() < 1e-12);
    }

    #[test]
    fn summaries_group_by_name_and_sort_by_cycles() {
        let mut p = Profile::default();
        p.push(ProfileEvent::Kernel(kernel("small", 0, 5.0, 1)));
        p.push(ProfileEvent::Kernel(kernel("big", 1, 100.0, 7)));
        p.push(ProfileEvent::Kernel(kernel("small", 2, 5.0, 1)));
        let s = summarize_kernels(&p);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].name, "big");
        assert_eq!(s[1].launches, 2);
        assert_eq!(s[1].counters.gld_transactions, 2);
        assert!((s[1].avg_occupancy - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_counters_roundtrip() {
        let t = TransferRecord {
            dir: TransferDir::DtoH,
            bytes: 64,
            start_cycles: 0.0,
            cycles: 8.0,
        };
        let c = t.as_counters();
        assert_eq!(c.dtoh_bytes, 64);
        assert_eq!(c.htod_bytes, 0);
        assert!((c.cycles - 8.0).abs() < 1e-12);
    }

    #[test]
    fn report_and_trace_files_are_valid_json_shaped() {
        let mut p = Profile::default();
        p.push(ProfileEvent::Kernel(kernel("copy\"k", 0, 10.0, 3)));
        p.push(ProfileEvent::Transfer(TransferRecord {
            dir: TransferDir::HtoD,
            bytes: 1024,
            start_cycles: 10.0,
            cycles: 0.0,
        }));
        let dir = std::env::temp_dir();
        let report = dir.join("nextdoor_profile_test_report.json");
        let trace = dir.join("nextdoor_profile_test_trace.json");
        let spec = GpuSpec::small();
        write_kernel_report(&report, &spec, &p).unwrap();
        write_chrome_trace(&trace, &spec, &[("gpu0", &p)]).unwrap();
        let r = std::fs::read_to_string(&report).unwrap();
        assert!(r.contains("\"kernels\""));
        assert!(r.contains("copy\\\"k"));
        assert!(r.contains("\"totals\""));
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.contains("\"traceEvents\""));
        assert!(t.contains("\"PCIe\""));
        assert!(t.contains("\"SM 0\""));
        assert!(t.starts_with('{') && t.trim_end().ends_with('}'));
        std::fs::remove_file(report).ok();
        std::fs::remove_file(trace).ok();
    }
}
