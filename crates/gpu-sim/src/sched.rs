//! Assignment of thread blocks to streaming multiprocessors.
//!
//! Real GPUs hand blocks to SMs as they free up; greedy list scheduling
//! (each block goes to the currently least-loaded SM) is the standard model
//! of that work distributor. The makespan of the schedule is the kernel's
//! simulated duration, so a kernel whose blocks have wildly different costs
//! — the vanilla transit-parallel baseline on a skewed graph — pays for its
//! imbalance in simulated time, exactly as it would on hardware.

/// Result of scheduling one kernel's blocks onto the SMs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Kernel duration: the maximum SM finish time, in cycles.
    pub makespan: f64,
    /// Total busy cycles summed over SMs.
    pub busy: f64,
    /// Per-SM busy cycles.
    pub per_sm: Vec<f64>,
}

impl Schedule {
    /// Busy fraction of the SMs over the kernel duration, in `[0, 1]`.
    pub fn activity(&self) -> f64 {
        if self.makespan == 0.0 {
            0.0
        } else {
            self.busy / (self.makespan * self.per_sm.len() as f64)
        }
    }
}

/// Greedy list scheduling of `block_times` onto `num_sms` SMs.
///
/// `concurrent_blocks_per_sm` models how many blocks an SM can host at once
/// (bounded by warp, block and shared-memory limits); an SM's time is its
/// assigned work divided by that concurrency, with a floor of its single
/// largest block (a block cannot finish faster than itself).
///
/// # Panics
///
/// Panics if `num_sms == 0` or `concurrent_blocks_per_sm == 0`.
pub fn schedule(num_sms: usize, concurrent_blocks_per_sm: usize, block_times: &[f64]) -> Schedule {
    assert!(num_sms > 0, "need at least one SM");
    assert!(concurrent_blocks_per_sm > 0, "need concurrency >= 1");
    let mut load = vec![0.0f64; num_sms];
    let mut largest = vec![0.0f64; num_sms];
    // A binary heap keyed by load would be asymptotically better, but block
    // counts are at most a few hundred thousand and num_sms is tiny, so a
    // linear argmin with an index rotation is fast and allocation-free.
    for (i, &t) in block_times.iter().enumerate() {
        let sm = if load.iter().all(|&l| l == 0.0) {
            // Fast path for the first wave: round-robin.
            i % num_sms
        } else {
            let mut best = 0;
            for s in 1..num_sms {
                if load[s] < load[best] {
                    best = s;
                }
            }
            best
        };
        load[sm] += t;
        largest[sm] = largest[sm].max(t);
    }
    let per_sm: Vec<f64> = load
        .iter()
        .zip(&largest)
        .map(|(&l, &big)| (l / concurrent_blocks_per_sm as f64).max(big))
        .collect();
    let makespan = per_sm.iter().cloned().fold(0.0, f64::max);
    let busy: f64 = per_sm.iter().sum();
    Schedule {
        makespan,
        busy,
        per_sm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_blocks_fill_all_sms() {
        let s = schedule(4, 1, &[10.0; 8]);
        assert!((s.makespan - 20.0).abs() < 1e-9);
        assert!((s.activity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_giant_block_dominates() {
        let s = schedule(4, 1, &[100.0, 1.0, 1.0, 1.0]);
        assert!((s.makespan - 100.0).abs() < 1e-9);
        assert!(s.activity() < 0.3, "three SMs nearly idle");
    }

    #[test]
    fn fewer_blocks_than_sms_leaves_idle_sms() {
        let s = schedule(8, 1, &[10.0, 10.0]);
        assert!((s.makespan - 10.0).abs() < 1e-9);
        assert!((s.activity() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn concurrency_divides_load_but_not_below_largest() {
        let s = schedule(1, 4, &[10.0, 10.0, 10.0, 10.0]);
        assert!(
            (s.makespan - 10.0).abs() < 1e-9,
            "4 blocks run concurrently"
        );
        let s = schedule(1, 4, &[40.0, 1.0, 1.0, 1.0]);
        assert!((s.makespan - 40.0).abs() < 1e-9, "floor at largest block");
    }

    #[test]
    fn empty_launch_has_zero_makespan() {
        let s = schedule(4, 1, &[]);
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.activity(), 0.0);
    }

    #[test]
    fn greedy_beats_worst_case_imbalance() {
        // Mixed sizes: greedy should spread the four 50s over four SMs.
        let times = [50.0, 50.0, 50.0, 50.0, 10.0, 10.0, 10.0, 10.0];
        let s = schedule(4, 1, &times);
        assert!(s.makespan <= 60.0 + 1e-9);
        assert!(s.makespan >= 60.0 - 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one SM")]
    fn zero_sms_rejected() {
        let _ = schedule(0, 1, &[1.0]);
    }
}
