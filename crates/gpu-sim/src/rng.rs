//! Counter-based (stateless) random numbers for kernels.
//!
//! GPU kernels cannot carry sequential RNG state across threads, so — like
//! Philox in cuRAND — the simulator derives every draw from a key: a short
//! SplitMix64 hash chain over `(seed, key, salt)`. Because draws are keyed
//! by *logical* identifiers (sample id, step, slot) rather than by execution
//! order, every engine (transit-parallel, sample-parallel, CPU reference)
//! produces bit-identical samples. The workspace's equivalence tests rely
//! on this.

/// SplitMix64 finalising mix.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Hashes a `(seed, key, salt)` triple into 64 uniform bits.
#[inline]
pub fn hash3(seed: u64, key: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(seed ^ key.wrapping_mul(0xD6E8FEB86659FD93)) ^ salt)
}

/// One 32-bit uniform draw.
#[inline]
pub fn rand_u32(seed: u64, key: u64, salt: u64) -> u32 {
    (hash3(seed, key, salt) >> 32) as u32
}

/// One uniform draw in `[0, 1)`.
#[inline]
pub fn rand_f32(seed: u64, key: u64, salt: u64) -> f32 {
    (rand_u32(seed, key, salt) >> 8) as f32 / (1u32 << 24) as f32
}

/// One uniform draw in `[0, n)` via the multiply-shift range reduction.
///
/// Returns 0 when `n == 0` so callers can treat empty ranges uniformly.
#[inline]
pub fn rand_range(seed: u64, key: u64, salt: u64, n: u32) -> u32 {
    if n == 0 {
        return 0;
    }
    ((rand_u32(seed, key, salt) as u64 * n as u64) >> 32) as u32
}

/// Packs a `(sample, step, slot)` logical coordinate into an RNG key.
///
/// Sampling engines use this to guarantee engine-independent draws: the key
/// depends only on which logical decision is being made, never on which
/// thread makes it.
#[inline]
pub fn sample_key(sample: u64, step: u64, slot: u64) -> u64 {
    sample
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(step.wrapping_mul(0xC2B2AE3D27D4EB4F))
        .wrapping_add(slot.wrapping_mul(0x165667B19E3779F9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(rand_u32(1, 2, 3), rand_u32(1, 2, 3));
        assert_ne!(rand_u32(1, 2, 3), rand_u32(1, 2, 4));
        assert_ne!(rand_u32(1, 2, 3), rand_u32(2, 2, 3));
    }

    #[test]
    fn f32_in_unit_interval() {
        for i in 0..10_000u64 {
            let v = rand_f32(42, i, 7);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_and_zero() {
        assert_eq!(rand_range(1, 2, 3, 0), 0);
        for i in 0..10_000u64 {
            let v = rand_range(9, i, 1, 17);
            assert!(v < 17);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let n = 8u32;
        let mut counts = [0u32; 8];
        let draws = 80_000u64;
        for i in 0..draws {
            counts[rand_range(123, i, 0, n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {b} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    fn bits_look_independent_across_keys() {
        // Adjacent keys should flip about half the output bits.
        let mut total = 0u32;
        for i in 0..1_000u64 {
            total += (rand_u32(5, i, 0) ^ rand_u32(5, i + 1, 0)).count_ones();
        }
        let avg = total as f64 / 1_000.0;
        assert!((avg - 16.0).abs() < 1.5, "avalanche average {avg}");
    }

    #[test]
    fn sample_key_disambiguates_coordinates() {
        assert_ne!(sample_key(1, 0, 0), sample_key(0, 1, 0));
        assert_ne!(sample_key(1, 0, 0), sample_key(0, 0, 1));
        assert_ne!(sample_key(2, 3, 4), sample_key(3, 2, 4));
    }
}
