//! The simulated GPU device: memory allocation and kernel launches.
//!
//! # Host threading model
//!
//! Blocks within a launch are data-independent in every kernel this
//! simulator runs (randomness is keyed by logical coordinates, not
//! execution order), so [`Gpu::launch`] may execute them concurrently on a
//! host worker pool. Determinism is preserved by construction: each worker
//! accumulates per-block `block::BlockStats` shards for a
//! *contiguous* chunk of blocks, the shards are concatenated in canonical
//! block order, and every reduction (counter merge, block-time vector, SM
//! schedule) then runs over that ordered sequence — exactly the arithmetic
//! the sequential loop performs. `host_threads = 1` *is* the sequential
//! loop. Kernels whose semantics depend on cross-block execution order
//! (e.g. consuming the return value of a global atomic as a store index)
//! must use [`Gpu::launch_ordered`], which always runs blocks sequentially.

use std::cell::{Cell, RefCell};
use std::sync::Arc;

use crate::block::{BlockCtx, BlockStats};
use crate::counters::{Counters, KernelStats};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::mem::{DeviceBuffer, MemTracker, OutOfMemory};
use crate::profile::{KernelRecord, Profile, ProfileEvent, TransferDir, TransferRecord};
use crate::sched;
use crate::spec::GpuSpec;
use crate::warp::WARP_SIZE;

/// Grid and block dimensions of a kernel launch (1-D, as all NextDoor
/// kernels are).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: usize,
    /// Threads per block (multiple of the warp size for full warps).
    pub block_dim: usize,
}

impl LaunchConfig {
    /// Creates a config covering at least `total_threads` with blocks of
    /// `block_dim` threads.
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero or exceeds 1024.
    pub fn grid1d(total_threads: usize, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block_dim must be positive");
        assert!(block_dim <= 1024, "block_dim exceeds the CUDA limit");
        LaunchConfig {
            grid_dim: total_threads.div_ceil(block_dim),
            block_dim,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }
}

/// Resolves the worker-thread count for a device: an explicit spec value
/// wins, then the `NEXTDOOR_SIM_THREADS` environment variable, then the
/// machine's available parallelism.
fn resolve_host_threads(spec_threads: usize) -> usize {
    if spec_threads > 0 {
        return spec_threads;
    }
    if let Ok(s) = std::env::var("NEXTDOOR_SIM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A simulated GPU device.
///
/// Owns the memory tracker and the accumulated [`Counters`]; kernels are
/// launched with [`Gpu::launch`]. Buffers are owned by the caller so that
/// kernels can borrow them under the usual Rust rules; device stores go
/// through shared references (see [`DeviceBuffer`]), which is what lets a
/// launch execute its blocks on several host threads at once.
pub struct Gpu {
    spec: GpuSpec,
    tracker: Arc<MemTracker>,
    host_threads: usize,
    counters: Counters,
    kernel_log: Vec<KernelStats>,
    profile: Profile,
    charge_transfers: bool,
    fault_plan: Option<FaultPlan>,
    alloc_seq: Cell<u64>,
    launch_seq: u64,
    faults: RefCell<Vec<FaultEvent>>,
    lost: Cell<bool>,
}

impl Gpu {
    /// Creates a device with the given specification.
    ///
    /// The host worker-thread count is resolved here, once:
    /// `spec.host_threads` if non-zero, else `NEXTDOOR_SIM_THREADS`, else
    /// available parallelism.
    pub fn new(spec: GpuSpec) -> Self {
        let tracker = MemTracker::new(spec.device_memory);
        let host_threads = resolve_host_threads(spec.host_threads);
        Gpu {
            spec,
            tracker,
            host_threads,
            counters: Counters::default(),
            kernel_log: Vec::new(),
            profile: Profile::default(),
            charge_transfers: false,
            fault_plan: None,
            alloc_seq: Cell::new(0),
            launch_seq: 0,
            faults: RefCell::new(Vec::new()),
            lost: Cell::new(false),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Resolved host worker-thread count used by [`Gpu::launch`].
    pub fn host_threads(&self) -> usize {
        self.host_threads
    }

    /// Installs a [`FaultPlan`]; faults fire at the scripted allocation and
    /// launch indices (see [`crate::fault`] for the exact semantics).
    /// Replaces any previously installed plan; use [`Gpu::extend_faults`]
    /// to compose plans mid-run.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Merges `plan` into the device's installed fault plan (installing it
    /// if none is present). Together with [`FaultPlan::shifted`] this lets
    /// a chaos harness schedule additional faults relative to "now" on a
    /// device that already has traffic — and possibly a plan — behind it.
    pub fn extend_faults(&mut self, plan: FaultPlan) {
        match &mut self.fault_plan {
            Some(existing) => existing.merge(&plan),
            None => self.fault_plan = Some(plan),
        }
    }

    /// Drains the fault events recorded since the last call.
    pub fn take_faults(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.faults.borrow_mut())
    }

    /// Whether the device has been lost (a scripted
    /// [`FaultKind::DeviceLost`] fault fired).
    pub fn device_lost(&self) -> bool {
        self.lost.get()
    }

    /// Advances the allocation counter; returns the index if this
    /// allocation is scripted to fail.
    fn alloc_fault(&self) -> Option<u64> {
        let idx = self.alloc_seq.get();
        self.alloc_seq.set(idx + 1);
        let plan = self.fault_plan.as_ref()?;
        plan.alloc_oom.contains(&idx).then_some(idx)
    }

    /// Allocates a zero-initialised device buffer.
    ///
    /// An injected allocation fault on this path is *correctable*: the
    /// event is recorded for [`Gpu::take_faults`] and the allocation
    /// proceeds (see [`crate::fault`]).
    ///
    /// # Panics
    ///
    /// Panics when device memory is genuinely exhausted; use
    /// [`Gpu::try_alloc`] for the fallible path (the out-of-memory
    /// experiment needs it).
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> DeviceBuffer<T> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
        }
        DeviceBuffer::new(len, self.tracker.clone()).expect("device memory exhausted")
    }

    /// Allocates a zero-initialised device buffer, reporting exhaustion.
    /// Injected allocation faults surface here as `Err(OutOfMemory)`.
    pub fn try_alloc<T: Copy + Default>(&self, len: usize) -> Result<DeviceBuffer<T>, OutOfMemory> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
            return Err(OutOfMemory {
                requested: len * std::mem::size_of::<T>(),
                available: self.tracker.capacity() - self.tracker.used(),
            });
        }
        DeviceBuffer::new(len, self.tracker.clone())
    }

    /// Copies a host slice to a fresh device buffer, charging the PCIe
    /// transfer when transfer charging is enabled.
    ///
    /// An injected allocation fault on this path is *correctable*, as for
    /// [`Gpu::alloc`].
    ///
    /// # Panics
    ///
    /// Panics when device memory is genuinely exhausted.
    pub fn to_device<T: Copy + Default>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
        }
        let buf =
            DeviceBuffer::from_slice(src, self.tracker.clone()).expect("device memory exhausted");
        self.charge_htod(buf.size_bytes());
        buf
    }

    /// Fallible variant of [`Gpu::to_device`]. Injected allocation faults
    /// surface here as `Err(OutOfMemory)`.
    pub fn try_to_device<T: Copy + Default>(
        &mut self,
        src: &[T],
    ) -> Result<DeviceBuffer<T>, OutOfMemory> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
            return Err(OutOfMemory {
                requested: std::mem::size_of_val(src),
                available: self.tracker.capacity() - self.tracker.used(),
            });
        }
        let buf = DeviceBuffer::from_slice(src, self.tracker.clone())?;
        self.charge_htod(buf.size_bytes());
        Ok(buf)
    }

    /// Copies a host slice into host-staged (pinned) memory: addressable by
    /// kernels but not counted against device capacity and never subject to
    /// fault injection. The out-of-core engine stages the full graph this
    /// way and models residency via explicit per-step transfers.
    pub fn host_stage<T: Copy + Default>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        DeviceBuffer::staged(src, self.tracker.clone())
    }

    /// Enables or disables charging of host↔device transfer time. The paper
    /// excludes transfer time except in the large-graph experiment (§8.4).
    pub fn set_charge_transfers(&mut self, yes: bool) {
        self.charge_transfers = yes;
    }

    /// Charges a host-to-device transfer of `bytes` (if charging is on).
    pub fn charge_htod(&mut self, bytes: usize) {
        self.charge_transfer(TransferDir::HtoD, bytes);
    }

    /// Charges a device-to-host transfer of `bytes` (if charging is on).
    pub fn charge_dtoh(&mut self, bytes: usize) {
        self.charge_transfer(TransferDir::DtoH, bytes);
    }

    fn charge_transfer(&mut self, dir: TransferDir, bytes: usize) {
        let start_cycles = self.counters.cycles;
        let cycles = if self.charge_transfers {
            self.spec.pcie_cycles(bytes)
        } else {
            0.0
        };
        match dir {
            TransferDir::HtoD => self.counters.htod_bytes += bytes as u64,
            TransferDir::DtoH => self.counters.dtoh_bytes += bytes as u64,
        }
        self.counters.cycles += cycles;
        self.profile.push(ProfileEvent::Transfer(TransferRecord {
            dir,
            bytes: bytes as u64,
            start_cycles,
            cycles,
        }));
    }

    /// Bytes of device memory currently allocated.
    pub fn mem_used(&self) -> usize {
        self.tracker.used()
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity(&self) -> usize {
        self.tracker.capacity()
    }

    /// Launches a kernel: `kernel` is invoked once per thread block, with
    /// blocks distributed over the device's host worker threads (see the
    /// module docs for the determinism argument). The kernel closure is
    /// shared by the workers, so it must be `Fn + Sync`; device writes go
    /// through `&DeviceBuffer` and host-memory outputs through
    /// [`crate::SyncSlice`] / [`crate::BlockShards`].
    ///
    /// Returns the per-launch statistics; the same deltas are accumulated
    /// into [`Gpu::counters`]. Results are bit-identical at any thread
    /// count.
    pub fn launch(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        kernel: impl Fn(&mut BlockCtx<'_>) + Sync,
    ) -> KernelStats {
        let launch_idx = self.pre_launch(name);
        let threads = self.host_threads.min(cfg.grid_dim.max(1));
        let blocks = if threads <= 1 {
            run_blocks_sequential(&self.spec, cfg, kernel)
        } else {
            run_blocks_parallel(&self.spec, cfg, threads, &kernel)
        };
        self.post_launch(name, cfg, launch_idx, &blocks)
    }

    /// Launches a kernel whose blocks must execute **sequentially in block
    /// order** on the host, because its semantics observe cross-block
    /// execution order — e.g. a queue built from the return values of
    /// global atomics, as the baseline frontier kernels do. Cost accounting
    /// is identical to [`Gpu::launch`]; only the execution strategy
    /// differs, and `FnMut` closures (mutable host captures) are allowed.
    pub fn launch_ordered(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        mut kernel: impl FnMut(&mut BlockCtx<'_>),
    ) -> KernelStats {
        let launch_idx = self.pre_launch(name);
        let mut blocks = Vec::with_capacity(cfg.grid_dim);
        for b in 0..cfg.grid_dim {
            let mut ctx = BlockCtx::new(b, cfg.block_dim, &self.spec);
            kernel(&mut ctx);
            blocks.push(ctx.stats);
        }
        self.post_launch(name, cfg, launch_idx, &blocks)
    }

    /// Fault hooks and launch-index bookkeeping shared by both launch
    /// entry points.
    fn pre_launch(&mut self, name: &str) -> u64 {
        let launch_idx = self.launch_seq;
        self.launch_seq += 1;
        if let Some(plan) = &self.fault_plan {
            if plan.device_lost_at_launch == Some(launch_idx) && !self.lost.get() {
                self.lost.set(true);
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::DeviceLost,
                    launch_idx,
                    name,
                ));
            }
            if plan.transient_launches.contains(&launch_idx) {
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::TransientMemory,
                    launch_idx,
                    name,
                ));
            }
        }
        launch_idx
    }

    /// Reduces per-block stats (in canonical block order) into launch
    /// counters, block times, the SM schedule, and the profile record —
    /// the same arithmetic regardless of how the blocks were executed.
    fn post_launch(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        launch_idx: u64,
        blocks: &[BlockStats],
    ) -> KernelStats {
        let warps_per_block = cfg.block_dim.div_ceil(WARP_SIZE).max(1);
        let mut launch_counters = Counters::default();
        let mut max_shared_words = 0usize;
        for b in blocks {
            launch_counters.merge(&b.counters);
            max_shared_words = max_shared_words.max(b.shared_words_used);
        }
        // Occupancy: how many blocks can an SM host at once?
        let resident_blocks = self.resident_blocks(cfg.block_dim, max_shared_words * 4);
        let resident_warps = (warps_per_block * resident_blocks).min(self.spec.max_warps_per_sm);
        // Convert each block's cost components to a time, overlapping
        // compute with memory and hiding latency behind the resident warps.
        let cost = &self.spec.cost;
        let mut block_times = Vec::with_capacity(blocks.len());
        for b in blocks {
            let latency_bound = b.mem_requests as f64 * cost.global_latency / resident_warps as f64;
            let t = b.pipeline_cycles.max(b.mem_bw_cycles).max(latency_bound) + cost.block_overhead;
            block_times.push(t);
        }
        let sch = sched::schedule(self.spec.num_sms, 1, &block_times);
        let cycles = sch.makespan + cost.launch_overhead;
        if let Some(budget) = self.fault_plan.as_ref().and_then(|p| p.watchdog_cycles) {
            if cycles > budget {
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::WatchdogTimeout,
                    launch_idx,
                    name,
                ));
            }
        }
        launch_counters.launches = 1;
        launch_counters.cycles = cycles;
        launch_counters.sm_busy_cycles = sch.busy;
        launch_counters.sm_total_cycles = sch.makespan * self.spec.num_sms as f64;
        let start_cycles = self.counters.cycles;
        self.counters.merge(&launch_counters);
        self.profile.push(ProfileEvent::Kernel(KernelRecord {
            name: name.to_string(),
            launch_idx,
            grid_dim: cfg.grid_dim,
            block_dim: cfg.block_dim,
            start_cycles,
            cycles,
            counters: launch_counters,
            occupancy: resident_warps as f64 / self.spec.max_warps_per_sm as f64,
            per_sm_busy: sch.per_sm,
            shared_mem_bytes: max_shared_words * 4,
        }));
        let stats = KernelStats {
            name: name.to_string(),
            blocks: cfg.grid_dim,
            threads_per_block: cfg.block_dim,
            cycles,
            counters: launch_counters,
        };
        self.kernel_log.push(stats.clone());
        stats
    }

    /// Number of blocks of `block_dim` threads and `shared_bytes` of shared
    /// memory that one SM can host concurrently (see
    /// [`GpuSpec::resident_blocks`] — the launch path and the planners
    /// share one definition of occupancy).
    fn resident_blocks(&self, block_dim: usize, shared_bytes: usize) -> usize {
        self.spec.resident_blocks(block_dim, shared_bytes)
    }

    /// Accumulated counters over all launches and transfers.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-launch log, in launch order.
    pub fn kernel_log(&self) -> &[KernelStats] {
        &self.kernel_log
    }

    /// The bounded per-kernel/per-transfer profile buffer (see
    /// [`crate::profile`]).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Rebounds the profile buffer to `capacity` events, keeping existing
    /// events (the oldest are folded into the evicted aggregate if the new
    /// bound is smaller).
    pub fn set_profile_capacity(&mut self, capacity: usize) {
        let mut fresh = Profile::with_capacity(capacity);
        let old = std::mem::take(&mut self.profile);
        fresh.absorb(old);
        self.profile = fresh;
    }

    /// Kernel launches issued so far. Monotonic over the device's lifetime
    /// (never reset), so a pair of snapshots brackets the profile records
    /// of any code region by `launch_idx`.
    pub fn launches_issued(&self) -> u64 {
        self.launch_seq
    }

    /// Buffer allocations issued so far (the counter [`FaultPlan`] keys
    /// allocation faults off). Monotonic over the device's lifetime, like
    /// [`Gpu::launches_issued`].
    pub fn allocs_issued(&self) -> u64 {
        self.alloc_seq.get()
    }

    /// Total simulated time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.spec.cycles_to_ms(self.counters.cycles)
    }

    /// Resets counters, the kernel log and the profile buffer (memory stays
    /// allocated).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
        self.kernel_log.clear();
        self.profile.clear();
    }
}

/// The sequential block loop: today's exact code path (`host_threads = 1`).
fn run_blocks_sequential(
    spec: &GpuSpec,
    cfg: LaunchConfig,
    kernel: impl Fn(&mut BlockCtx<'_>),
) -> Vec<BlockStats> {
    let mut blocks = Vec::with_capacity(cfg.grid_dim);
    for b in 0..cfg.grid_dim {
        let mut ctx = BlockCtx::new(b, cfg.block_dim, spec);
        kernel(&mut ctx);
        blocks.push(ctx.stats);
    }
    blocks
}

/// Executes the grid as `threads` contiguous chunks on the worker pool.
/// Workers fill disjoint per-chunk shards; concatenating the shards in
/// chunk order restores canonical block order, so every downstream
/// reduction is bit-identical to the sequential loop's.
fn run_blocks_parallel(
    spec: &GpuSpec,
    cfg: LaunchConfig,
    threads: usize,
    kernel: &(impl Fn(&mut BlockCtx<'_>) + Sync),
) -> Vec<BlockStats> {
    let chunk = cfg.grid_dim.div_ceil(threads);
    let num_chunks = cfg.grid_dim.div_ceil(chunk.max(1));
    let mut shards: Vec<Vec<BlockStats>> = Vec::with_capacity(num_chunks);
    shards.resize_with(num_chunks, Vec::new);
    rayon::scope(|s| {
        for (c, shard) in shards.iter_mut().enumerate() {
            s.spawn(move |_| {
                let lo = c * chunk;
                let hi = ((c + 1) * chunk).min(cfg.grid_dim);
                shard.reserve(hi - lo);
                for b in lo..hi {
                    let mut ctx = BlockCtx::new(b, cfg.block_dim, spec);
                    kernel(&mut ctx);
                    shard.push(ctx.stats);
                }
            });
        }
    });
    shards.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::warp::FULL_MASK;

    #[test]
    fn grid1d_rounds_up() {
        let c = LaunchConfig::grid1d(100, 32);
        assert_eq!(c.grid_dim, 4);
        assert_eq!(c.total_threads(), 128);
    }

    #[test]
    #[should_panic(expected = "CUDA limit")]
    fn grid1d_rejects_oversized_blocks() {
        let _ = LaunchConfig::grid1d(10, 2048);
    }

    #[test]
    fn simple_kernel_moves_data_and_counts() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let src = gpu.to_device(&(0u32..64).collect::<Vec<_>>());
        let dst = gpu.alloc::<u32>(64);
        let stats = gpu.launch("copy", LaunchConfig::grid1d(64, 32), |blk| {
            blk.for_each_warp(|w| {
                let idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&dst, &idx, v, FULL_MASK);
            });
        });
        assert_eq!(dst.as_slice(), src.as_slice());
        assert_eq!(stats.blocks, 2);
        // A full warp reading 32 consecutive u32s touches 4 sectors.
        assert_eq!(stats.counters.gld_transactions, 8);
        assert_eq!(stats.counters.gst_transactions, 8);
        assert!((stats.counters.gst_efficiency() - 100.0).abs() < 1e-9);
        assert!(gpu.counters().cycles > 0.0);
    }

    #[test]
    fn strided_access_is_uncoalesced() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let src = gpu.to_device(&vec![7u32; 32 * 32]);
        let dst = gpu.alloc::<u32>(32);
        let stats = gpu.launch("gather", LaunchConfig::grid1d(32, 32), |blk| {
            blk.for_each_warp(|w| {
                let idx: [usize; 32] = std::array::from_fn(|l| l * 32);
                let out_idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&dst, &out_idx, v, FULL_MASK);
            });
        });
        // 32 lanes × stride 128 bytes: every lane hits its own sector.
        assert_eq!(stats.counters.gld_transactions, 32);
        assert!(stats.counters.gld_efficiency() < 15.0);
    }

    #[test]
    fn imbalanced_blocks_lower_activity() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let stats = gpu.launch(
            "skew",
            LaunchConfig {
                grid_dim: 8,
                block_dim: 32,
            },
            |blk| {
                let heavy = if blk.block_idx == 0 { 10_000 } else { 10 };
                blk.for_each_warp(|w| w.charge_compute(heavy));
            },
        );
        let act = stats.counters.multiprocessor_activity();
        assert!(act < 40.0, "activity {act} should reflect the straggler");
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let stats = gpu.launch(
            "noop",
            LaunchConfig {
                grid_dim: 0,
                block_dim: 32,
            },
            |_| {},
        );
        assert!((stats.cycles - gpu.spec().cost.launch_overhead).abs() < 1e-9);
    }

    #[test]
    fn transfer_charging_toggle() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let _a = gpu.to_device(&vec![0u8; 1 << 20]);
        let free_cycles = gpu.counters().cycles;
        assert_eq!(free_cycles, 0.0, "transfers free by default");
        gpu.set_charge_transfers(true);
        let _b = gpu.to_device(&vec![0u8; 1 << 20]);
        assert!(gpu.counters().cycles > 0.0);
        assert_eq!(gpu.counters().htod_bytes, 2 << 20);
    }

    #[test]
    fn oom_reported_and_memory_reclaimed() {
        let mut spec = GpuSpec::small();
        spec.device_memory = 1 << 16;
        let gpu = Gpu::new(spec);
        let a = gpu.try_alloc::<u8>(50_000).unwrap();
        assert!(gpu.try_alloc::<u8>(50_000).is_err());
        drop(a);
        assert!(gpu.try_alloc::<u8>(50_000).is_ok());
    }

    #[test]
    fn injected_alloc_faults_err_on_fallible_and_correct_on_infallible() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut gpu = Gpu::new(GpuSpec::small());
        gpu.inject_faults(FaultPlan::new().fail_alloc(0).fail_alloc(1));
        // Allocation #0 hits the fallible path: a real error.
        assert!(gpu.try_alloc::<u32>(8).is_err());
        // Allocation #1 hits the infallible path: correctable, succeeds.
        let buf = gpu.alloc::<u32>(8);
        assert_eq!(buf.len(), 8);
        // Allocation #2 is not scripted.
        assert!(gpu.try_alloc::<u32>(8).is_ok());
        let events = gpu.take_faults();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind == FaultKind::AllocOom));
        assert!(gpu.take_faults().is_empty(), "take drains");
    }

    #[test]
    fn launch_faults_are_recorded_and_device_loss_sticks() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut gpu = Gpu::new(GpuSpec::small());
        gpu.inject_faults(
            FaultPlan::new()
                .transient_at_launch(0)
                .lose_device_at_launch(2)
                .watchdog_cycles(0.0),
        );
        let run = |gpu: &mut Gpu| {
            gpu.launch(
                "noop",
                LaunchConfig {
                    grid_dim: 1,
                    block_dim: 32,
                },
                |blk| {
                    blk.for_each_warp(|w| w.charge_compute(10));
                },
            );
        };
        run(&mut gpu); // #0: transient + watchdog (budget 0)
        assert!(!gpu.device_lost());
        run(&mut gpu); // #1: watchdog only
        run(&mut gpu); // #2: device lost + watchdog
        assert!(gpu.device_lost());
        let events = gpu.take_faults();
        let count = |k: FaultKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(FaultKind::TransientMemory), 1);
        assert_eq!(count(FaultKind::WatchdogTimeout), 3);
        assert_eq!(count(FaultKind::DeviceLost), 1, "loss recorded once");
        run(&mut gpu); // kernels still execute on a lost device
        assert!(gpu.device_lost());
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut a = Gpu::new(GpuSpec::small());
        let mut b = Gpu::new(GpuSpec::small());
        b.inject_faults(FaultPlan::new());
        for gpu in [&mut a, &mut b] {
            let src = gpu.to_device(&(0u32..64).collect::<Vec<_>>());
            let dst = gpu.alloc::<u32>(64);
            gpu.launch("copy", LaunchConfig::grid1d(64, 32), |blk| {
                blk.for_each_warp(|w| {
                    let idx = w.global_thread_ids();
                    let v = w.ld_global(&src, &idx, FULL_MASK);
                    w.st_global(&dst, &idx, v, FULL_MASK);
                });
            });
        }
        assert_eq!(a.counters().cycles, b.counters().cycles);
        assert!(b.take_faults().is_empty());
    }

    #[test]
    fn reset_clears_counters_not_memory() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let buf = gpu.to_device(&[1u32, 2, 3]);
        gpu.launch(
            "noop",
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
            },
            |blk| {
                blk.for_each_warp(|w| w.charge_compute(1));
            },
        );
        gpu.reset_counters();
        assert_eq!(gpu.counters().cycles, 0.0);
        assert_eq!(gpu.kernel_log().len(), 0);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
    }

    /// Runs the same skewed workload at a given thread count and returns
    /// everything observable: output data, counters, and block-time-derived
    /// cycle totals.
    fn run_at_threads(threads: usize) -> (Vec<u32>, Counters, Vec<KernelStats>) {
        let mut spec = GpuSpec::small();
        spec.host_threads = threads;
        let mut gpu = Gpu::new(spec);
        let n = 4096usize;
        let src = gpu.to_device(&(0..n as u32).collect::<Vec<_>>());
        let dst = gpu.alloc::<u32>(n);
        gpu.launch("mix", LaunchConfig::grid1d(n, 64), |blk| {
            // Skew the per-block cost so chunk boundaries matter.
            let extra = (blk.block_idx % 7) as u64 * 13;
            blk.for_each_warp(|w| {
                let idx = w.global_thread_ids();
                let m = w.mask_where(|l| idx[l] < n);
                let v = w.ld_global(&src, &idx.map(|i| i.min(n - 1)), m);
                let out = w.map(v, m, |x| x.wrapping_mul(3).wrapping_add(1));
                w.charge_compute(extra);
                w.st_global(&dst, &idx.map(|i| i.min(n - 1)), out, m);
            });
        });
        let hist = crate::algorithms::histogram(&mut gpu, &src, n);
        let _ = hist;
        (
            dst.as_slice().to_vec(),
            *gpu.counters(),
            gpu.kernel_log().to_vec(),
        )
    }

    #[test]
    fn parallel_launch_is_bit_identical_to_sequential() {
        let (d1, c1, k1) = run_at_threads(1);
        for threads in [2, 3, 4, 8] {
            let (d, c, k) = run_at_threads(threads);
            assert_eq!(d, d1, "output data differs at {threads} threads");
            assert_eq!(c, c1, "counters differ at {threads} threads");
            assert_eq!(k.len(), k1.len());
            for (a, b) in k.iter().zip(&k1) {
                assert_eq!(a.counters, b.counters);
                assert_eq!(a.cycles, b.cycles, "kernel cycles differ");
            }
        }
    }

    #[test]
    fn launch_ordered_matches_launch_accounting() {
        let mut spec = GpuSpec::small();
        spec.host_threads = 4;
        let mut gpu = Gpu::new(spec);
        let src = gpu.to_device(&(0u32..256).collect::<Vec<_>>());
        let dst = gpu.alloc::<u32>(256);
        let par = gpu.launch("copy_par", LaunchConfig::grid1d(256, 32), |blk| {
            blk.for_each_warp(|w| {
                let idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&dst, &idx, v, FULL_MASK);
            });
        });
        let mut order = Vec::new();
        let seq = gpu.launch_ordered("copy_seq", LaunchConfig::grid1d(256, 32), |blk| {
            order.push(blk.block_idx);
            blk.for_each_warp(|w| {
                let idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&dst, &idx, v, FULL_MASK);
            });
        });
        assert_eq!(order, (0..8).collect::<Vec<_>>(), "strict block order");
        assert_eq!(par.counters.gld_transactions, seq.counters.gld_transactions);
        assert_eq!(par.cycles, seq.cycles);
    }

    #[test]
    fn env_threads_resolution_prefers_spec() {
        let mut spec = GpuSpec::small();
        spec.host_threads = 3;
        let gpu = Gpu::new(spec);
        assert_eq!(gpu.host_threads(), 3);
        // host_threads = 0 resolves to *something* positive.
        let gpu = Gpu::new(GpuSpec::small());
        assert!(gpu.host_threads() >= 1);
    }

    #[test]
    fn kernel_panics_propagate_from_worker_threads() {
        let mut spec = GpuSpec::small();
        spec.host_threads = 4;
        let mut gpu = Gpu::new(spec);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch(
                "boom",
                LaunchConfig {
                    grid_dim: 8,
                    block_dim: 32,
                },
                |blk| {
                    assert!(blk.block_idx != 5, "scripted kernel assert");
                },
            );
        }));
        assert!(res.is_err(), "block panic must reach the caller");
    }
}
