//! The simulated GPU device: memory allocation and kernel launches.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use crate::block::BlockCtx;
use crate::counters::{Counters, KernelStats};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::mem::{DeviceBuffer, MemTracker, OutOfMemory};
use crate::profile::{KernelRecord, Profile, ProfileEvent, TransferDir, TransferRecord};
use crate::sched;
use crate::spec::GpuSpec;
use crate::warp::WARP_SIZE;

/// Grid and block dimensions of a kernel launch (1-D, as all NextDoor
/// kernels are).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: usize,
    /// Threads per block (multiple of the warp size for full warps).
    pub block_dim: usize,
}

impl LaunchConfig {
    /// Creates a config covering at least `total_threads` with blocks of
    /// `block_dim` threads.
    ///
    /// # Panics
    ///
    /// Panics if `block_dim` is zero or exceeds 1024.
    pub fn grid1d(total_threads: usize, block_dim: usize) -> Self {
        assert!(block_dim > 0, "block_dim must be positive");
        assert!(block_dim <= 1024, "block_dim exceeds the CUDA limit");
        LaunchConfig {
            grid_dim: total_threads.div_ceil(block_dim),
            block_dim,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> usize {
        self.grid_dim * self.block_dim
    }
}

/// A simulated GPU device.
///
/// Owns the memory tracker and the accumulated [`Counters`]; kernels are
/// launched with [`Gpu::launch`]. Buffers are owned by the caller so that
/// kernels can borrow some buffers mutably and others immutably under the
/// usual Rust rules.
pub struct Gpu {
    spec: GpuSpec,
    tracker: Rc<MemTracker>,
    counters: Counters,
    kernel_log: Vec<KernelStats>,
    profile: Profile,
    charge_transfers: bool,
    fault_plan: Option<FaultPlan>,
    alloc_seq: Cell<u64>,
    launch_seq: u64,
    faults: RefCell<Vec<FaultEvent>>,
    lost: Cell<bool>,
}

impl Gpu {
    /// Creates a device with the given specification.
    pub fn new(spec: GpuSpec) -> Self {
        let tracker = MemTracker::new(spec.device_memory);
        Gpu {
            spec,
            tracker,
            counters: Counters::default(),
            kernel_log: Vec::new(),
            profile: Profile::default(),
            charge_transfers: false,
            fault_plan: None,
            alloc_seq: Cell::new(0),
            launch_seq: 0,
            faults: RefCell::new(Vec::new()),
            lost: Cell::new(false),
        }
    }

    /// The device specification.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Installs a [`FaultPlan`]; faults fire at the scripted allocation and
    /// launch indices (see [`crate::fault`] for the exact semantics).
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Drains the fault events recorded since the last call.
    pub fn take_faults(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut *self.faults.borrow_mut())
    }

    /// Whether the device has been lost (a scripted
    /// [`FaultKind::DeviceLost`] fault fired).
    pub fn device_lost(&self) -> bool {
        self.lost.get()
    }

    /// Advances the allocation counter; returns the index if this
    /// allocation is scripted to fail.
    fn alloc_fault(&self) -> Option<u64> {
        let idx = self.alloc_seq.get();
        self.alloc_seq.set(idx + 1);
        let plan = self.fault_plan.as_ref()?;
        plan.alloc_oom.contains(&idx).then_some(idx)
    }

    /// Allocates a zero-initialised device buffer.
    ///
    /// An injected allocation fault on this path is *correctable*: the
    /// event is recorded for [`Gpu::take_faults`] and the allocation
    /// proceeds (see [`crate::fault`]).
    ///
    /// # Panics
    ///
    /// Panics when device memory is genuinely exhausted; use
    /// [`Gpu::try_alloc`] for the fallible path (the out-of-memory
    /// experiment needs it).
    pub fn alloc<T: Copy + Default>(&self, len: usize) -> DeviceBuffer<T> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
        }
        DeviceBuffer::new(len, self.tracker.clone()).expect("device memory exhausted")
    }

    /// Allocates a zero-initialised device buffer, reporting exhaustion.
    /// Injected allocation faults surface here as `Err(OutOfMemory)`.
    pub fn try_alloc<T: Copy + Default>(&self, len: usize) -> Result<DeviceBuffer<T>, OutOfMemory> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
            return Err(OutOfMemory {
                requested: len * std::mem::size_of::<T>(),
                available: self.tracker.capacity() - self.tracker.used(),
            });
        }
        DeviceBuffer::new(len, self.tracker.clone())
    }

    /// Copies a host slice to a fresh device buffer, charging the PCIe
    /// transfer when transfer charging is enabled.
    ///
    /// An injected allocation fault on this path is *correctable*, as for
    /// [`Gpu::alloc`].
    ///
    /// # Panics
    ///
    /// Panics when device memory is genuinely exhausted.
    pub fn to_device<T: Copy + Default>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
        }
        let buf =
            DeviceBuffer::from_slice(src, self.tracker.clone()).expect("device memory exhausted");
        self.charge_htod(buf.size_bytes());
        buf
    }

    /// Fallible variant of [`Gpu::to_device`]. Injected allocation faults
    /// surface here as `Err(OutOfMemory)`.
    pub fn try_to_device<T: Copy + Default>(
        &mut self,
        src: &[T],
    ) -> Result<DeviceBuffer<T>, OutOfMemory> {
        if let Some(idx) = self.alloc_fault() {
            self.faults.borrow_mut().push(FaultEvent::alloc(idx));
            return Err(OutOfMemory {
                requested: std::mem::size_of_val(src),
                available: self.tracker.capacity() - self.tracker.used(),
            });
        }
        let buf = DeviceBuffer::from_slice(src, self.tracker.clone())?;
        self.charge_htod(buf.size_bytes());
        Ok(buf)
    }

    /// Copies a host slice into host-staged (pinned) memory: addressable by
    /// kernels but not counted against device capacity and never subject to
    /// fault injection. The out-of-core engine stages the full graph this
    /// way and models residency via explicit per-step transfers.
    pub fn host_stage<T: Copy + Default>(&mut self, src: &[T]) -> DeviceBuffer<T> {
        DeviceBuffer::staged(src, self.tracker.clone())
    }

    /// Enables or disables charging of host↔device transfer time. The paper
    /// excludes transfer time except in the large-graph experiment (§8.4).
    pub fn set_charge_transfers(&mut self, yes: bool) {
        self.charge_transfers = yes;
    }

    /// Charges a host-to-device transfer of `bytes` (if charging is on).
    pub fn charge_htod(&mut self, bytes: usize) {
        self.charge_transfer(TransferDir::HtoD, bytes);
    }

    /// Charges a device-to-host transfer of `bytes` (if charging is on).
    pub fn charge_dtoh(&mut self, bytes: usize) {
        self.charge_transfer(TransferDir::DtoH, bytes);
    }

    fn charge_transfer(&mut self, dir: TransferDir, bytes: usize) {
        let start_cycles = self.counters.cycles;
        let cycles = if self.charge_transfers {
            self.spec.pcie_cycles(bytes)
        } else {
            0.0
        };
        match dir {
            TransferDir::HtoD => self.counters.htod_bytes += bytes as u64,
            TransferDir::DtoH => self.counters.dtoh_bytes += bytes as u64,
        }
        self.counters.cycles += cycles;
        self.profile.push(ProfileEvent::Transfer(TransferRecord {
            dir,
            bytes: bytes as u64,
            start_cycles,
            cycles,
        }));
    }

    /// Bytes of device memory currently allocated.
    pub fn mem_used(&self) -> usize {
        self.tracker.used()
    }

    /// Device memory capacity in bytes.
    pub fn mem_capacity(&self) -> usize {
        self.tracker.capacity()
    }

    /// Launches a kernel: `kernel` is invoked once per thread block.
    ///
    /// Returns the per-launch statistics; the same deltas are accumulated
    /// into [`Gpu::counters`].
    pub fn launch(
        &mut self,
        name: &str,
        cfg: LaunchConfig,
        mut kernel: impl FnMut(&mut BlockCtx<'_>),
    ) -> KernelStats {
        let launch_idx = self.launch_seq;
        self.launch_seq += 1;
        if let Some(plan) = &self.fault_plan {
            if plan.device_lost_at_launch == Some(launch_idx) && !self.lost.get() {
                self.lost.set(true);
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::DeviceLost,
                    launch_idx,
                    name,
                ));
            }
            if plan.transient_launches.contains(&launch_idx) {
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::TransientMemory,
                    launch_idx,
                    name,
                ));
            }
        }
        let mut launch_counters = Counters::default();
        let mut block_times = Vec::with_capacity(cfg.grid_dim);
        let mut max_shared_words = 0usize;
        let warps_per_block = cfg.block_dim.div_ceil(WARP_SIZE).max(1);
        // First pass: execute blocks functionally and collect their costs.
        let mut raw: Vec<(f64, f64, u64)> = Vec::with_capacity(cfg.grid_dim);
        for b in 0..cfg.grid_dim {
            let mut ctx = BlockCtx::new(b, cfg.block_dim, &self.spec);
            kernel(&mut ctx);
            launch_counters.merge(&ctx.stats.counters);
            max_shared_words = max_shared_words.max(ctx.stats.shared_words_used);
            raw.push((
                ctx.stats.pipeline_cycles,
                ctx.stats.mem_bw_cycles,
                ctx.stats.mem_requests,
            ));
        }
        // Occupancy: how many blocks can an SM host at once?
        let resident_blocks = self.resident_blocks(cfg.block_dim, max_shared_words * 4);
        let resident_warps = (warps_per_block * resident_blocks).min(self.spec.max_warps_per_sm);
        // Second pass: convert each block's cost components to a time,
        // overlapping compute with memory and hiding latency behind the
        // resident warps.
        let cost = &self.spec.cost;
        for &(pipeline, bw, reqs) in &raw {
            let latency_bound = reqs as f64 * cost.global_latency / resident_warps as f64;
            let t = pipeline.max(bw).max(latency_bound) + cost.block_overhead;
            block_times.push(t);
        }
        let sch = sched::schedule(self.spec.num_sms, 1, &block_times);
        let cycles = sch.makespan + cost.launch_overhead;
        if let Some(budget) = self.fault_plan.as_ref().and_then(|p| p.watchdog_cycles) {
            if cycles > budget {
                self.faults.borrow_mut().push(FaultEvent::launch(
                    FaultKind::WatchdogTimeout,
                    launch_idx,
                    name,
                ));
            }
        }
        launch_counters.launches = 1;
        launch_counters.cycles = cycles;
        launch_counters.sm_busy_cycles = sch.busy;
        launch_counters.sm_total_cycles = sch.makespan * self.spec.num_sms as f64;
        let start_cycles = self.counters.cycles;
        self.counters.merge(&launch_counters);
        self.profile.push(ProfileEvent::Kernel(KernelRecord {
            name: name.to_string(),
            launch_idx,
            grid_dim: cfg.grid_dim,
            block_dim: cfg.block_dim,
            start_cycles,
            cycles,
            counters: launch_counters,
            occupancy: resident_warps as f64 / self.spec.max_warps_per_sm as f64,
            per_sm_busy: sch.per_sm,
            shared_mem_bytes: max_shared_words * 4,
        }));
        let stats = KernelStats {
            name: name.to_string(),
            blocks: cfg.grid_dim,
            threads_per_block: cfg.block_dim,
            cycles,
            counters: launch_counters,
        };
        self.kernel_log.push(stats.clone());
        stats
    }

    /// Number of blocks of `block_dim` threads and `shared_bytes` of shared
    /// memory that one SM can host concurrently.
    fn resident_blocks(&self, block_dim: usize, shared_bytes: usize) -> usize {
        let warps_per_block = block_dim.div_ceil(WARP_SIZE).max(1);
        let by_warps = self.spec.max_warps_per_sm / warps_per_block;
        let by_blocks = self.spec.max_blocks_per_sm;
        let by_shared = self
            .spec
            .shared_mem_per_block
            .checked_div(shared_bytes)
            .unwrap_or(usize::MAX);
        by_warps.min(by_blocks).min(by_shared).max(1)
    }

    /// Accumulated counters over all launches and transfers.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-launch log, in launch order.
    pub fn kernel_log(&self) -> &[KernelStats] {
        &self.kernel_log
    }

    /// The bounded per-kernel/per-transfer profile buffer (see
    /// [`crate::profile`]).
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Rebounds the profile buffer to `capacity` events, keeping existing
    /// events (the oldest are folded into the evicted aggregate if the new
    /// bound is smaller).
    pub fn set_profile_capacity(&mut self, capacity: usize) {
        let mut fresh = Profile::with_capacity(capacity);
        let old = std::mem::take(&mut self.profile);
        fresh.absorb(old);
        self.profile = fresh;
    }

    /// Kernel launches issued so far. Monotonic over the device's lifetime
    /// (never reset), so a pair of snapshots brackets the profile records
    /// of any code region by `launch_idx`.
    pub fn launches_issued(&self) -> u64 {
        self.launch_seq
    }

    /// Total simulated time so far, in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.spec.cycles_to_ms(self.counters.cycles)
    }

    /// Resets counters, the kernel log and the profile buffer (memory stays
    /// allocated).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
        self.kernel_log.clear();
        self.profile.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::warp::FULL_MASK;

    #[test]
    fn grid1d_rounds_up() {
        let c = LaunchConfig::grid1d(100, 32);
        assert_eq!(c.grid_dim, 4);
        assert_eq!(c.total_threads(), 128);
    }

    #[test]
    #[should_panic(expected = "CUDA limit")]
    fn grid1d_rejects_oversized_blocks() {
        let _ = LaunchConfig::grid1d(10, 2048);
    }

    #[test]
    fn simple_kernel_moves_data_and_counts() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let src = gpu.to_device(&(0u32..64).collect::<Vec<_>>());
        let mut dst = gpu.alloc::<u32>(64);
        let stats = gpu.launch("copy", LaunchConfig::grid1d(64, 32), |blk| {
            blk.for_each_warp(|w| {
                let idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&mut dst, &idx, v, FULL_MASK);
            });
        });
        assert_eq!(dst.as_slice(), src.as_slice());
        assert_eq!(stats.blocks, 2);
        // A full warp reading 32 consecutive u32s touches 4 sectors.
        assert_eq!(stats.counters.gld_transactions, 8);
        assert_eq!(stats.counters.gst_transactions, 8);
        assert!((stats.counters.gst_efficiency() - 100.0).abs() < 1e-9);
        assert!(gpu.counters().cycles > 0.0);
    }

    #[test]
    fn strided_access_is_uncoalesced() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let src = gpu.to_device(&vec![7u32; 32 * 32]);
        let mut dst = gpu.alloc::<u32>(32);
        let stats = gpu.launch("gather", LaunchConfig::grid1d(32, 32), |blk| {
            blk.for_each_warp(|w| {
                let idx: [usize; 32] = std::array::from_fn(|l| l * 32);
                let out_idx = w.global_thread_ids();
                let v = w.ld_global(&src, &idx, FULL_MASK);
                w.st_global(&mut dst, &out_idx, v, FULL_MASK);
            });
        });
        // 32 lanes × stride 128 bytes: every lane hits its own sector.
        assert_eq!(stats.counters.gld_transactions, 32);
        assert!(stats.counters.gld_efficiency() < 15.0);
    }

    #[test]
    fn imbalanced_blocks_lower_activity() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let stats = gpu.launch(
            "skew",
            LaunchConfig {
                grid_dim: 8,
                block_dim: 32,
            },
            |blk| {
                let heavy = if blk.block_idx == 0 { 10_000 } else { 10 };
                blk.for_each_warp(|w| w.charge_compute(heavy));
            },
        );
        let act = stats.counters.multiprocessor_activity();
        assert!(act < 40.0, "activity {act} should reflect the straggler");
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let stats = gpu.launch(
            "noop",
            LaunchConfig {
                grid_dim: 0,
                block_dim: 32,
            },
            |_| {},
        );
        assert!((stats.cycles - gpu.spec().cost.launch_overhead).abs() < 1e-9);
    }

    #[test]
    fn transfer_charging_toggle() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let _a = gpu.to_device(&vec![0u8; 1 << 20]);
        let free_cycles = gpu.counters().cycles;
        assert_eq!(free_cycles, 0.0, "transfers free by default");
        gpu.set_charge_transfers(true);
        let _b = gpu.to_device(&vec![0u8; 1 << 20]);
        assert!(gpu.counters().cycles > 0.0);
        assert_eq!(gpu.counters().htod_bytes, 2 << 20);
    }

    #[test]
    fn oom_reported_and_memory_reclaimed() {
        let mut spec = GpuSpec::small();
        spec.device_memory = 1 << 16;
        let gpu = Gpu::new(spec);
        let a = gpu.try_alloc::<u8>(50_000).unwrap();
        assert!(gpu.try_alloc::<u8>(50_000).is_err());
        drop(a);
        assert!(gpu.try_alloc::<u8>(50_000).is_ok());
    }

    #[test]
    fn injected_alloc_faults_err_on_fallible_and_correct_on_infallible() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut gpu = Gpu::new(GpuSpec::small());
        gpu.inject_faults(FaultPlan::new().fail_alloc(0).fail_alloc(1));
        // Allocation #0 hits the fallible path: a real error.
        assert!(gpu.try_alloc::<u32>(8).is_err());
        // Allocation #1 hits the infallible path: correctable, succeeds.
        let buf = gpu.alloc::<u32>(8);
        assert_eq!(buf.len(), 8);
        // Allocation #2 is not scripted.
        assert!(gpu.try_alloc::<u32>(8).is_ok());
        let events = gpu.take_faults();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind == FaultKind::AllocOom));
        assert!(gpu.take_faults().is_empty(), "take drains");
    }

    #[test]
    fn launch_faults_are_recorded_and_device_loss_sticks() {
        use crate::fault::{FaultKind, FaultPlan};
        let mut gpu = Gpu::new(GpuSpec::small());
        gpu.inject_faults(
            FaultPlan::new()
                .transient_at_launch(0)
                .lose_device_at_launch(2)
                .watchdog_cycles(0.0),
        );
        let run = |gpu: &mut Gpu| {
            gpu.launch(
                "noop",
                LaunchConfig {
                    grid_dim: 1,
                    block_dim: 32,
                },
                |blk| {
                    blk.for_each_warp(|w| w.charge_compute(10));
                },
            );
        };
        run(&mut gpu); // #0: transient + watchdog (budget 0)
        assert!(!gpu.device_lost());
        run(&mut gpu); // #1: watchdog only
        run(&mut gpu); // #2: device lost + watchdog
        assert!(gpu.device_lost());
        let events = gpu.take_faults();
        let count = |k: FaultKind| events.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(FaultKind::TransientMemory), 1);
        assert_eq!(count(FaultKind::WatchdogTimeout), 3);
        assert_eq!(count(FaultKind::DeviceLost), 1, "loss recorded once");
        run(&mut gpu); // kernels still execute on a lost device
        assert!(gpu.device_lost());
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        use crate::fault::FaultPlan;
        let mut a = Gpu::new(GpuSpec::small());
        let mut b = Gpu::new(GpuSpec::small());
        b.inject_faults(FaultPlan::new());
        for gpu in [&mut a, &mut b] {
            let src = gpu.to_device(&(0u32..64).collect::<Vec<_>>());
            let mut dst = gpu.alloc::<u32>(64);
            gpu.launch("copy", LaunchConfig::grid1d(64, 32), |blk| {
                blk.for_each_warp(|w| {
                    let idx = w.global_thread_ids();
                    let v = w.ld_global(&src, &idx, FULL_MASK);
                    w.st_global(&mut dst, &idx, v, FULL_MASK);
                });
            });
        }
        assert_eq!(a.counters().cycles, b.counters().cycles);
        assert!(b.take_faults().is_empty());
    }

    #[test]
    fn reset_clears_counters_not_memory() {
        let mut gpu = Gpu::new(GpuSpec::small());
        let buf = gpu.to_device(&[1u32, 2, 3]);
        gpu.launch(
            "noop",
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
            },
            |blk| {
                blk.for_each_warp(|w| w.charge_compute(1));
            },
        );
        gpu.reset_counters();
        assert_eq!(gpu.counters().cycles, 0.0);
        assert_eq!(gpu.kernel_log().len(), 0);
        assert_eq!(buf.as_slice(), &[1, 2, 3]);
    }
}
