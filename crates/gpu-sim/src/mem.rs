//! Device memory: typed buffers in a virtual global address space.
//!
//! Buffers carry a virtual base address so the simulator can compute which
//! 32-byte sectors a warp's accesses touch (the unit in which NVIDIA
//! hardware counts global-memory transactions). A shared allocation tracker
//! enforces the device-memory capacity, which the out-of-GPU-memory
//! experiment (§8.4 of the paper) depends on.

use std::cell::Cell;
use std::rc::Rc;

/// Error returned when an allocation exceeds the remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes still available on the device.
    pub available: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Shared allocator state: a bump address counter plus a live-bytes gauge.
#[derive(Debug)]
pub(crate) struct MemTracker {
    next_addr: Cell<u64>,
    used: Cell<usize>,
    capacity: usize,
}

impl MemTracker {
    pub(crate) fn new(capacity: usize) -> Rc<Self> {
        Rc::new(MemTracker {
            // Start well above zero so that address 0 never aliases a buffer.
            next_addr: Cell::new(0x1000),
            used: Cell::new(0),
            capacity,
        })
    }

    pub(crate) fn used(&self) -> usize {
        self.used.get()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    fn reserve(&self, bytes: usize) -> Result<u64, OutOfMemory> {
        let available = self.capacity - self.used.get();
        if bytes > available {
            return Err(OutOfMemory {
                requested: bytes,
                available,
            });
        }
        self.used.set(self.used.get() + bytes);
        Ok(self.bump(bytes))
    }

    /// Assigns an address range without counting it against device capacity.
    /// Used for host-staged buffers (pinned host memory mapped into the
    /// device address space), which the out-of-core engine relies on.
    fn reserve_unchecked(&self, bytes: usize) -> u64 {
        self.bump(bytes)
    }

    fn bump(&self, bytes: usize) -> u64 {
        let base = self.next_addr.get();
        // 256-byte alignment, matching cudaMalloc.
        let aligned = (base + 255) & !255;
        self.next_addr.set(aligned + bytes as u64);
        aligned
    }

    fn release(&self, bytes: usize) {
        self.used.set(self.used.get() - bytes);
    }
}

/// A typed buffer in simulated device global memory.
///
/// Element type is constrained to `Copy` plain data; the simulator's kernels
/// use `u32`, `u64`, `f32` and `usize`. The backing store is host memory —
/// reads and writes through [`crate::WarpCtx`] are charged simulated
/// transactions, while [`DeviceBuffer::as_slice`] is the un-charged
/// "cudaMemcpy back to host and inspect" path used by tests and by result
/// extraction.
#[derive(Debug)]
pub struct DeviceBuffer<T: Copy> {
    base: u64,
    data: Vec<T>,
    tracker: Rc<MemTracker>,
    /// Whether the bytes count against device capacity (false for
    /// host-staged buffers).
    counted: bool,
}

impl<T: Copy + Default> DeviceBuffer<T> {
    pub(crate) fn new(len: usize, tracker: Rc<MemTracker>) -> Result<Self, OutOfMemory> {
        let bytes = len * std::mem::size_of::<T>();
        let base = tracker.reserve(bytes)?;
        Ok(DeviceBuffer {
            base,
            data: vec![T::default(); len],
            tracker,
            counted: true,
        })
    }

    pub(crate) fn from_slice(src: &[T], tracker: Rc<MemTracker>) -> Result<Self, OutOfMemory> {
        let bytes = std::mem::size_of_val(src);
        let base = tracker.reserve(bytes)?;
        Ok(DeviceBuffer {
            base,
            data: src.to_vec(),
            tracker,
            counted: true,
        })
    }

    /// A buffer in host-staged (pinned) memory: addressable by kernels but
    /// not counted against device capacity.
    pub(crate) fn staged(src: &[T], tracker: Rc<MemTracker>) -> Self {
        let bytes = std::mem::size_of_val(src);
        let base = tracker.reserve_unchecked(bytes);
        DeviceBuffer {
            base,
            data: src.to_vec(),
            tracker,
            counted: false,
        }
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Virtual address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(idx <= self.data.len());
        self.base + (idx * std::mem::size_of::<T>()) as u64
    }

    /// Host view of the contents (the "copy back and inspect" path; not
    /// charged as simulated traffic).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable host view (host-side initialisation; not charged).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Reads element `idx` (device-side; the caller charges the access).
    #[inline]
    pub(crate) fn read(&self, idx: usize) -> T {
        self.data[idx]
    }

    /// Writes element `idx` (device-side; the caller charges the access).
    #[inline]
    pub(crate) fn write(&mut self, idx: usize, v: T) {
        self.data[idx] = v;
    }
}

impl<T: Copy> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if self.counted {
            self.tracker.release(self.size_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> Rc<MemTracker> {
        MemTracker::new(1 << 20)
    }

    #[test]
    fn alloc_zeroed_and_addressed() {
        let t = tracker();
        let b = DeviceBuffer::<u32>::new(16, t.clone()).unwrap();
        assert_eq!(b.len(), 16);
        assert_eq!(b.as_slice(), &[0u32; 16]);
        assert_eq!(b.addr_of(0) % 256, 0, "allocations are 256-byte aligned");
        assert_eq!(b.addr_of(4) - b.addr_of(0), 16);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let t = tracker();
        let a = DeviceBuffer::<u32>::new(100, t.clone()).unwrap();
        let b = DeviceBuffer::<u32>::new(100, t.clone()).unwrap();
        let a_end = a.addr_of(100);
        assert!(b.addr_of(0) >= a_end);
    }

    #[test]
    fn capacity_enforced_and_released_on_drop() {
        let t = MemTracker::new(1024);
        let a = DeviceBuffer::<u8>::new(800, t.clone()).unwrap();
        let err = DeviceBuffer::<u8>::new(800, t.clone()).unwrap_err();
        assert_eq!(err.requested, 800);
        assert_eq!(err.available, 224);
        assert!(err.to_string().contains("out of memory"));
        drop(a);
        assert_eq!(t.used(), 0);
        let _b = DeviceBuffer::<u8>::new(800, t.clone()).unwrap();
        assert_eq!(t.used(), 800);
    }

    #[test]
    fn from_slice_copies() {
        let t = tracker();
        let b = DeviceBuffer::from_slice(&[1u32, 2, 3], t).unwrap();
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn staged_buffers_bypass_capacity_accounting() {
        let t = MemTracker::new(64);
        let big = vec![0u8; 4096];
        let b = DeviceBuffer::staged(&big, t.clone());
        assert_eq!(t.used(), 0, "staged bytes are not device-resident");
        assert!(b.addr_of(0) > 0);
        let c = DeviceBuffer::<u8>::new(32, t.clone()).unwrap();
        assert!(
            c.addr_of(0) >= b.addr_of(4096),
            "address ranges stay disjoint"
        );
        drop(b);
        assert_eq!(t.used(), 32, "dropping a staged buffer releases nothing");
    }
}
