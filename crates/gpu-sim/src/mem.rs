//! Device memory: typed buffers in a virtual global address space.
//!
//! Buffers carry a virtual base address so the simulator can compute which
//! 32-byte sectors a warp's accesses touch (the unit in which NVIDIA
//! hardware counts global-memory transactions). A shared allocation tracker
//! enforces the device-memory capacity, which the out-of-GPU-memory
//! experiment (§8.4 of the paper) depends on.
//!
//! Buffer storage is interior-mutable through shared references, mirroring
//! real device memory: a kernel launch holds `&DeviceBuffer` for every
//! buffer it touches, and the thread blocks of the launch — which may run on
//! different host threads — write through those shared references. As on
//! CUDA hardware, two blocks of one launch writing the same element without
//! atomics is a kernel bug; the simulator's kernels only ever write disjoint
//! elements or use `DeviceBuffer::atomic_add`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned when an allocation exceeds the remaining device memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes still available on the device.
    pub available: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Shared allocator state: a bump address counter plus a live-bytes gauge.
///
/// Atomics (rather than `Cell`) keep the tracker `Sync`, so a `Gpu` and its
/// buffers can move across host threads — the multi-GPU driver runs one
/// device per thread.
#[derive(Debug)]
pub(crate) struct MemTracker {
    next_addr: AtomicU64,
    used: AtomicUsize,
    capacity: usize,
}

impl MemTracker {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(MemTracker {
            // Start well above zero so that address 0 never aliases a buffer.
            next_addr: AtomicU64::new(0x1000),
            used: AtomicUsize::new(0),
            capacity,
        })
    }

    pub(crate) fn used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    fn reserve(&self, bytes: usize) -> Result<u64, OutOfMemory> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let available = self.capacity - cur;
            if bytes > available {
                return Err(OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            match self
                .used
                .compare_exchange(cur, cur + bytes, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        Ok(self.bump(bytes))
    }

    /// Assigns an address range without counting it against device capacity.
    /// Used for host-staged buffers (pinned host memory mapped into the
    /// device address space), which the out-of-core engine relies on.
    fn reserve_unchecked(&self, bytes: usize) -> u64 {
        self.bump(bytes)
    }

    fn bump(&self, bytes: usize) -> u64 {
        let mut aligned = 0u64;
        // The closure always returns Some, so the update cannot fail; the
        // last evaluation corresponds to the successful exchange.
        let _ = self
            .next_addr
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |base| {
                // 256-byte alignment, matching cudaMalloc.
                aligned = (base + 255) & !255;
                Some(aligned + bytes as u64)
            });
        aligned
    }

    fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// One element of device-buffer storage: an `UnsafeCell` that is `Sync`, so
/// concurrently executing blocks can write their disjoint elements through
/// `&DeviceBuffer` (the simulated analogue of raw device pointers).
#[repr(transparent)]
struct SyncCell<T>(UnsafeCell<T>);

// SAFETY: access discipline is the launch contract documented on
// [`DeviceBuffer`]: within one launch, each element is written by at most
// one block (or through `atomic_add`), and host-side reads only happen
// outside launches, under `&mut Gpu` exclusivity.
unsafe impl<T: Send> Sync for SyncCell<T> {}

impl<T: Copy> SyncCell<T> {
    #[inline]
    fn new(v: T) -> Self {
        SyncCell(UnsafeCell::new(v))
    }

    #[inline]
    fn get(&self) -> T {
        // SAFETY: see the `Sync` impl above.
        unsafe { *self.0.get() }
    }

    #[inline]
    fn set(&self, v: T) {
        // SAFETY: see the `Sync` impl above.
        unsafe { *self.0.get() = v }
    }
}

/// A typed buffer in simulated device global memory.
///
/// Element type is constrained to `Copy` plain data; the simulator's kernels
/// use `u32`, `u64`, `f32` and `usize`. The backing store is host memory —
/// reads and writes through [`crate::WarpCtx`] are charged simulated
/// transactions, while [`DeviceBuffer::as_slice`] is the un-charged
/// "cudaMemcpy back to host and inspect" path used by tests and by result
/// extraction.
///
/// Device-side writes go through `&self`, because a parallel launch executes
/// blocks on several host threads at once. The contract is CUDA's: within a
/// single launch, elements written by more than one block (except via
/// `DeviceBuffer::atomic_add`) are a data race in the *simulated* program,
/// and the simulator's kernels are structured so this never happens.
pub struct DeviceBuffer<T: Copy> {
    base: u64,
    data: Vec<SyncCell<T>>,
    tracker: Arc<MemTracker>,
    /// Whether the bytes count against device capacity (false for
    /// host-staged buffers).
    counted: bool,
}

impl<T: Copy + std::fmt::Debug> std::fmt::Debug for DeviceBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceBuffer")
            .field("base", &self.base)
            .field("len", &self.data.len())
            .field("counted", &self.counted)
            .finish()
    }
}

impl<T: Copy + Default> DeviceBuffer<T> {
    pub(crate) fn new(len: usize, tracker: Arc<MemTracker>) -> Result<Self, OutOfMemory> {
        let bytes = len * std::mem::size_of::<T>();
        let base = tracker.reserve(bytes)?;
        Ok(DeviceBuffer {
            base,
            data: (0..len).map(|_| SyncCell::new(T::default())).collect(),
            tracker,
            counted: true,
        })
    }

    pub(crate) fn from_slice(src: &[T], tracker: Arc<MemTracker>) -> Result<Self, OutOfMemory> {
        let bytes = std::mem::size_of_val(src);
        let base = tracker.reserve(bytes)?;
        Ok(DeviceBuffer {
            base,
            data: src.iter().map(|&v| SyncCell::new(v)).collect(),
            tracker,
            counted: true,
        })
    }

    /// A buffer in host-staged (pinned) memory: addressable by kernels but
    /// not counted against device capacity.
    pub(crate) fn staged(src: &[T], tracker: Arc<MemTracker>) -> Self {
        let bytes = std::mem::size_of_val(src);
        let base = tracker.reserve_unchecked(bytes);
        DeviceBuffer {
            base,
            data: src.iter().map(|&v| SyncCell::new(v)).collect(),
            tracker,
            counted: false,
        }
    }
}

impl<T: Copy> DeviceBuffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<T>()
    }

    /// Virtual address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        debug_assert!(idx <= self.data.len());
        self.base + (idx * std::mem::size_of::<T>()) as u64
    }

    /// Host view of the contents (the "copy back and inspect" path; not
    /// charged as simulated traffic). Only meaningful between launches.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: `SyncCell<T>` is `repr(transparent)` over `T`, so the
        // layouts match; callers inspect buffers between launches, when no
        // block is writing.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr() as *const T, self.data.len()) }
    }

    /// Mutable host view (host-side initialisation; not charged).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `&mut self` guarantees exclusive access, and
        // `SyncCell<T>` is `repr(transparent)` over `T`.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_mut_ptr() as *mut T, self.data.len()) }
    }

    /// Reads element `idx` (device-side; the caller charges the access).
    #[inline]
    pub(crate) fn read(&self, idx: usize) -> T {
        self.data[idx].get()
    }

    /// Writes element `idx` (device-side; the caller charges the access).
    ///
    /// Takes `&self`: blocks of a parallel launch write disjoint elements
    /// through shared references, per the launch contract above.
    #[inline]
    pub(crate) fn write(&self, idx: usize, v: T) {
        self.data[idx].set(v);
    }
}

impl DeviceBuffer<u32> {
    /// Atomic fetch-add on element `idx`, returning the pre-add value.
    /// Safe under concurrent blocks, like CUDA's `atomicAdd`.
    #[inline]
    pub(crate) fn atomic_add(&self, idx: usize, v: u32) -> u32 {
        let cell: &SyncCell<u32> = &self.data[idx];
        // SAFETY: `AtomicU32` has the same size and alignment as `u32`, and
        // all concurrent access to this element goes through this method or
        // is disjoint per the launch contract.
        let atomic = unsafe { &*(cell.0.get() as *const AtomicU32) };
        atomic.fetch_add(v, Ordering::Relaxed)
    }
}

impl<T: Copy> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if self.counted {
            self.tracker.release(self.size_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> Arc<MemTracker> {
        MemTracker::new(1 << 20)
    }

    #[test]
    fn alloc_zeroed_and_addressed() {
        let t = tracker();
        let b = DeviceBuffer::<u32>::new(16, t.clone()).unwrap();
        assert_eq!(b.len(), 16);
        assert_eq!(b.as_slice(), &[0u32; 16]);
        assert_eq!(b.addr_of(0) % 256, 0, "allocations are 256-byte aligned");
        assert_eq!(b.addr_of(4) - b.addr_of(0), 16);
    }

    #[test]
    fn distinct_buffers_do_not_overlap() {
        let t = tracker();
        let a = DeviceBuffer::<u32>::new(100, t.clone()).unwrap();
        let b = DeviceBuffer::<u32>::new(100, t.clone()).unwrap();
        let a_end = a.addr_of(100);
        assert!(b.addr_of(0) >= a_end);
    }

    #[test]
    fn capacity_enforced_and_released_on_drop() {
        let t = MemTracker::new(1024);
        let a = DeviceBuffer::<u8>::new(800, t.clone()).unwrap();
        let err = DeviceBuffer::<u8>::new(800, t.clone()).unwrap_err();
        assert_eq!(err.requested, 800);
        assert_eq!(err.available, 224);
        assert!(err.to_string().contains("out of memory"));
        drop(a);
        assert_eq!(t.used(), 0);
        let _b = DeviceBuffer::<u8>::new(800, t.clone()).unwrap();
        assert_eq!(t.used(), 800);
    }

    #[test]
    fn from_slice_copies() {
        let t = tracker();
        let b = DeviceBuffer::from_slice(&[1u32, 2, 3], t).unwrap();
        assert_eq!(b.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn shared_reference_writes_are_visible() {
        let t = tracker();
        let b = DeviceBuffer::<u32>::new(4, t).unwrap();
        b.write(2, 7);
        assert_eq!(b.read(2), 7);
        assert_eq!(b.atomic_add(2, 5), 7, "atomic_add returns the old value");
        assert_eq!(b.as_slice(), &[0, 0, 12, 0]);
    }

    #[test]
    fn staged_buffers_bypass_capacity_accounting() {
        let t = MemTracker::new(64);
        let big = vec![0u8; 4096];
        let b = DeviceBuffer::staged(&big, t.clone());
        assert_eq!(t.used(), 0, "staged bytes are not device-resident");
        assert!(b.addr_of(0) > 0);
        let c = DeviceBuffer::<u8>::new(32, t.clone()).unwrap();
        assert!(
            c.addr_of(0) >= b.addr_of(4096),
            "address ranges stay disjoint"
        );
        drop(b);
        assert_eq!(t.used(), 32, "dropping a staged buffer releases nothing");
    }
}
