//! Deterministic fault injection for the simulated device.
//!
//! Real GPU sampling systems must survive device-memory exhaustion, ECC
//! events, kernel watchdog kills and whole-device loss. Because this
//! simulator is fully deterministic, those conditions can be *scripted*: a
//! [`FaultPlan`] names the exact allocation and launch indices at which
//! faults fire, so a failure observed once replays identically forever —
//! which is what makes recovery paths testable.
//!
//! # Semantics
//!
//! The device keeps two monotonic counters: one incremented by every buffer
//! allocation ([`crate::Gpu::alloc`], [`crate::Gpu::try_alloc`],
//! [`crate::Gpu::to_device`], [`crate::Gpu::try_to_device`]) and one by
//! every kernel launch. A plan keys faults off those counters:
//!
//! * **Allocation OOM** (`fail_alloc`): on the fallible paths (`try_alloc`,
//!   `try_to_device`) the call returns a genuine
//!   [`OutOfMemory`](crate::OutOfMemory) error. On the infallible paths
//!   (`alloc`, `to_device`) the fault is *correctable* — the allocation
//!   succeeds, and the event is recorded for the runtime to observe via
//!   [`crate::Gpu::take_faults`], mirroring how ECC-corrected errors are
//!   reported out-of-band on real hardware. Either way the event is logged.
//! * **Transient memory fault** (`transient_at_launch`): the launch executes
//!   normally (keeping the simulator's internal data flow intact) but its
//!   results must be considered corrupted; the event is recorded and the
//!   runtime is expected to discard and retry the affected step.
//! * **Watchdog timeout** (`watchdog_cycles`): any launch whose simulated
//!   cycle cost exceeds the budget is flagged as killed by the kernel
//!   watchdog. Recorded like a transient fault.
//! * **Device loss** (`lose_device_at_launch`): from the named launch
//!   onwards the device is permanently lost ([`crate::Gpu::device_lost`]
//!   returns `true`); a single [`FaultKind::DeviceLost`] event marks the
//!   transition. Launches still execute functionally — the simulator never
//!   produces garbage — but a correct runtime must treat every result from
//!   a lost device as void.
//!
//! Fault events accumulate on the device until drained with
//! [`crate::Gpu::take_faults`]; a fault-aware runtime drains them at step
//! boundaries and retries, degrades or fails over accordingly.

/// A script of faults to inject, keyed off the device's deterministic
/// allocation and launch counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// 0-based allocation indices that fail with out-of-memory.
    pub alloc_oom: Vec<u64>,
    /// 0-based launch indices that suffer a transient memory fault.
    pub transient_launches: Vec<u64>,
    /// Cycle budget above which a launch is flagged as killed by the kernel
    /// watchdog.
    pub watchdog_cycles: Option<f64>,
    /// Launch index at which the whole device is lost.
    pub device_lost_at_launch: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Scripts an out-of-memory failure at allocation `index`.
    pub fn fail_alloc(mut self, index: u64) -> Self {
        self.alloc_oom.push(index);
        self
    }

    /// Scripts a transient memory fault at launch `index`.
    pub fn transient_at_launch(mut self, index: u64) -> Self {
        self.transient_launches.push(index);
        self
    }

    /// Sets the kernel watchdog budget in simulated cycles.
    pub fn watchdog_cycles(mut self, budget: f64) -> Self {
        self.watchdog_cycles = Some(budget);
        self
    }

    /// Scripts whole-device loss at launch `index`.
    pub fn lose_device_at_launch(mut self, index: u64) -> Self {
        self.device_lost_at_launch = Some(index);
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.alloc_oom.is_empty()
            && self.transient_launches.is_empty()
            && self.watchdog_cycles.is_none()
            && self.device_lost_at_launch.is_none()
    }

    /// The plan with every scripted index shifted forward: allocation
    /// indices by `alloc_delta`, launch indices by `launch_delta`.
    ///
    /// This is the scheduling hook for per-replica chaos harnesses: a plan
    /// written relative to "now" (e.g. *lose the device on the 3rd launch
    /// from here*) is shifted by the device's current
    /// [`allocs_issued`](crate::Gpu::allocs_issued) /
    /// [`launches_issued`](crate::Gpu::launches_issued) counters and then
    /// installed, so the same script lands mid-stream on a device with any
    /// amount of prior traffic. The watchdog budget is index-free and is
    /// unaffected.
    pub fn shifted(mut self, alloc_delta: u64, launch_delta: u64) -> Self {
        for a in &mut self.alloc_oom {
            *a = a.saturating_add(alloc_delta);
        }
        for l in &mut self.transient_launches {
            *l = l.saturating_add(launch_delta);
        }
        if let Some(l) = &mut self.device_lost_at_launch {
            *l = l.saturating_add(launch_delta);
        }
        self
    }

    /// Folds `other` into this plan: fault indices are unioned, the
    /// watchdog budget and the device-loss launch each take the *earliest*
    /// (smallest) of the two when both are set.
    pub fn merge(&mut self, other: &FaultPlan) {
        self.alloc_oom.extend_from_slice(&other.alloc_oom);
        self.transient_launches
            .extend_from_slice(&other.transient_launches);
        self.watchdog_cycles = match (self.watchdog_cycles, other.watchdog_cycles) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.device_lost_at_launch = match (self.device_lost_at_launch, other.device_lost_at_launch)
        {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }
}

/// The category of an injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A scripted allocation failure.
    AllocOom,
    /// A transient memory fault during a launch.
    TransientMemory,
    /// A launch exceeded the watchdog's cycle budget.
    WatchdogTimeout,
    /// The device was lost.
    DeviceLost,
}

/// One injected fault, recorded on the device until drained.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// What happened.
    pub kind: FaultKind,
    /// The allocation index ([`FaultKind::AllocOom`]) or launch index
    /// (everything else) at which the fault fired.
    pub index: u64,
    /// Kernel name, for launch-scoped faults.
    pub kernel: Option<String>,
}

impl FaultEvent {
    pub(crate) fn alloc(index: u64) -> Self {
        FaultEvent {
            kind: FaultKind::AllocOom,
            index,
            kernel: None,
        }
    }

    pub(crate) fn launch(kind: FaultKind, index: u64, kernel: &str) -> Self {
        FaultEvent {
            kind,
            index,
            kernel: Some(kernel.to_string()),
        }
    }
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultKind::AllocOom => write!(f, "allocation #{} failed (injected OOM)", self.index),
            FaultKind::TransientMemory => write!(
                f,
                "transient memory fault in launch #{} ({})",
                self.index,
                self.kernel.as_deref().unwrap_or("?")
            ),
            FaultKind::WatchdogTimeout => write!(
                f,
                "watchdog killed launch #{} ({})",
                self.index,
                self.kernel.as_deref().unwrap_or("?")
            ),
            FaultKind::DeviceLost => write!(f, "device lost at launch #{}", self.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let p = FaultPlan::new()
            .fail_alloc(3)
            .fail_alloc(9)
            .transient_at_launch(1)
            .watchdog_cycles(1e6)
            .lose_device_at_launch(7);
        assert_eq!(p.alloc_oom, vec![3, 9]);
        assert_eq!(p.transient_launches, vec![1]);
        assert_eq!(p.watchdog_cycles, Some(1e6));
        assert_eq!(p.device_lost_at_launch, Some(7));
        assert!(!p.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn shifted_moves_every_index_and_merge_unions() {
        let p = FaultPlan::new()
            .fail_alloc(1)
            .transient_at_launch(2)
            .watchdog_cycles(5e5)
            .lose_device_at_launch(4)
            .shifted(10, 100);
        assert_eq!(p.alloc_oom, vec![11]);
        assert_eq!(p.transient_launches, vec![102]);
        assert_eq!(p.watchdog_cycles, Some(5e5), "watchdog is index-free");
        assert_eq!(p.device_lost_at_launch, Some(104));

        let mut a = FaultPlan::new().fail_alloc(1).lose_device_at_launch(9);
        let b = FaultPlan::new()
            .transient_at_launch(3)
            .watchdog_cycles(1e6)
            .lose_device_at_launch(5);
        a.merge(&b);
        assert_eq!(a.alloc_oom, vec![1]);
        assert_eq!(a.transient_launches, vec![3]);
        assert_eq!(a.watchdog_cycles, Some(1e6));
        assert_eq!(a.device_lost_at_launch, Some(5), "earliest loss wins");
    }

    #[test]
    fn events_display() {
        let e = FaultEvent::launch(FaultKind::WatchdogTimeout, 4, "scan");
        assert!(e.to_string().contains("watchdog"));
        assert!(e.to_string().contains("scan"));
        assert!(FaultEvent::alloc(2).to_string().contains("allocation #2"));
    }
}
