//! Warp-synchronous execution context.
//!
//! A [`WarpCtx`] exposes the operations a warp of 32 lanes can perform.
//! Every operation is issued for all active lanes at once, which is what
//! lets the simulator compute coalescing exactly: a global-memory operation
//! sees the 32 addresses and counts the distinct 32-byte sectors they touch.

use crate::counters::Counters;
use crate::lane::LaneTrace;
use crate::mem::DeviceBuffer;
use crate::rng;
use crate::spec::CostModel;

/// Number of lanes per warp, as on all recent NVIDIA hardware.
pub const WARP_SIZE: usize = 32;

/// Active-lane mask: bit `i` set means lane `i` participates.
pub type Mask = u32;

/// Mask with all 32 lanes active.
pub const FULL_MASK: Mask = u32::MAX;

/// Size in bytes of a global-memory sector (the granularity in which NVIDIA
/// hardware counts transactions).
pub const SECTOR_BYTES: u64 = 32;

/// Returns a mask with the first `n` lanes active.
///
/// # Panics
///
/// Panics if `n > 32`.
pub fn mask_first_n(n: usize) -> Mask {
    assert!(n <= WARP_SIZE);
    if n == WARP_SIZE {
        FULL_MASK
    } else {
        (1u32 << n) - 1
    }
}

/// Per-warp cost accumulation, folded into the owning block after the warp
/// finishes.
#[derive(Debug, Default, Clone)]
pub(crate) struct WarpStats {
    /// Pipeline cycles: compute, shared memory, shuffles, divergence.
    pub pipeline_cycles: f64,
    /// Bandwidth-bound global-memory cycles (transactions × sector cost).
    pub mem_bw_cycles: f64,
    /// Warp-level global-memory requests (latency-bound component).
    pub mem_requests: u64,
    /// Raw metric deltas.
    pub counters: Counters,
}

/// A handle to a block-shared memory array of `u32` words.
///
/// Obtained from [`crate::BlockCtx::shared_alloc`]; `f32` values are stored
/// via their bit patterns (see [`WarpCtx::ld_shared_f32`]).
#[derive(Debug, Clone, Copy)]
pub struct SharedArray {
    pub(crate) offset: usize,
    pub(crate) len: usize,
}

impl SharedArray {
    /// Number of `u32` words in the array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the array has zero words.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Execution context of one warp.
pub struct WarpCtx<'a> {
    /// Index of the owning block within the grid.
    pub block_idx: usize,
    /// Index of this warp within its block.
    pub warp_in_block: usize,
    /// Threads per block of the launch.
    pub block_dim: usize,
    pub(crate) cost: &'a CostModel,
    pub(crate) shared: &'a mut Vec<u32>,
    pub(crate) stats: &'a mut WarpStats,
}

impl<'a> WarpCtx<'a> {
    /// Global thread id of each lane.
    pub fn global_thread_ids(&self) -> [usize; WARP_SIZE] {
        let base = self.block_idx * self.block_dim + self.warp_in_block * WARP_SIZE;
        std::array::from_fn(|l| base + l)
    }

    /// Thread id of each lane within the block.
    pub fn thread_ids_in_block(&self) -> [usize; WARP_SIZE] {
        let base = self.warp_in_block * WARP_SIZE;
        std::array::from_fn(|l| base + l)
    }

    /// Global id of this warp.
    pub fn global_warp_id(&self) -> usize {
        self.block_idx * (self.block_dim / WARP_SIZE) + self.warp_in_block
    }

    /// Builds a mask from a per-lane predicate. Free of charge: this is the
    /// SIMT front-end evaluating a predicate register.
    pub fn mask_where(&self, f: impl Fn(usize) -> bool) -> Mask {
        let mut m = 0u32;
        for l in 0..WARP_SIZE {
            if f(l) {
                m |= 1 << l;
            }
        }
        m
    }

    /// Applies `f` lane-wise under `mask`, charging one compute instruction.
    pub fn map<T: Copy + Default, U: Copy + Default>(
        &mut self,
        vals: [T; WARP_SIZE],
        mask: Mask,
        mut f: impl FnMut(T) -> U,
    ) -> [U; WARP_SIZE] {
        self.charge_compute(1);
        let mut out = [U::default(); WARP_SIZE];
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                out[l] = f(vals[l]);
            }
        }
        out
    }

    /// Produces a lane vector from a per-lane function, charging one compute
    /// instruction (index arithmetic).
    pub fn lanes_from_fn<T: Copy + Default>(
        &mut self,
        mask: Mask,
        mut f: impl FnMut(usize) -> T,
    ) -> [T; WARP_SIZE] {
        self.charge_compute(1);
        let mut out = [T::default(); WARP_SIZE];
        for (l, slot) in out.iter_mut().enumerate() {
            if mask & (1 << l) != 0 {
                *slot = f(l);
            }
        }
        out
    }

    /// Charges `n` warp-level compute instructions.
    pub fn charge_compute(&mut self, n: u64) {
        self.stats.counters.compute_ops += n;
        self.stats.pipeline_cycles += n as f64 * self.cost.compute_cycles;
    }

    /// Records a divergence event that serialises the warp into `groups`
    /// execution groups, charging `groups - 1` extra instruction streams.
    pub fn charge_divergence(&mut self, groups: u64) {
        if groups > 1 {
            self.stats.counters.divergent_branches += groups - 1;
            self.stats.pipeline_cycles += (groups - 1) as f64 * self.cost.compute_cycles;
        }
    }

    /// Coalesced global load: reads `buf[idx[l]]` for every active lane.
    ///
    /// # Panics
    ///
    /// Panics if an active lane's index is out of bounds.
    pub fn ld_global<T: Copy + Default>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idxs: &[usize; WARP_SIZE],
        mask: Mask,
    ) -> [T; WARP_SIZE] {
        let mut out = [T::default(); WARP_SIZE];
        if mask == 0 {
            return out;
        }
        let elem = std::mem::size_of::<T>() as u64;
        let mut sectors = SectorSet::new();
        let mut active = 0u64;
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                out[l] = buf.read(idxs[l]);
                sectors.insert_range(buf.addr_of(idxs[l]), elem);
                active += 1;
            }
        }
        let tx = sectors.count();
        let c = &mut self.stats.counters;
        c.gld_requests += 1;
        c.gld_transactions += tx;
        c.gld_bytes_requested += active * elem;
        self.stats.mem_bw_cycles += tx as f64 * self.cost.global_tx_cycles;
        self.stats.mem_requests += 1;
        out
    }

    /// Coalesced global store: writes `vals[l]` to `buf[idx[l]]` for every
    /// active lane.
    ///
    /// # Panics
    ///
    /// Panics if an active lane's index is out of bounds. Two active lanes
    /// writing the same index is a data race on real hardware; the simulator
    /// lets the highest lane win, like CUDA's undefined-but-common outcome.
    /// The buffer is taken by shared reference — device stores mutate
    /// interior-mutable storage, so blocks of a parallel launch can write
    /// their disjoint elements concurrently (see [`DeviceBuffer`]).
    pub fn st_global<T: Copy + Default>(
        &mut self,
        buf: &DeviceBuffer<T>,
        idxs: &[usize; WARP_SIZE],
        vals: [T; WARP_SIZE],
        mask: Mask,
    ) {
        if mask == 0 {
            return;
        }
        let elem = std::mem::size_of::<T>() as u64;
        let mut sectors = SectorSet::new();
        let mut active = 0u64;
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                buf.write(idxs[l], vals[l]);
                sectors.insert_range(buf.addr_of(idxs[l]), elem);
                active += 1;
            }
        }
        let tx = sectors.count();
        let c = &mut self.stats.counters;
        c.gst_requests += 1;
        c.gst_transactions += tx;
        c.gst_bytes_requested += active * elem;
        self.stats.mem_bw_cycles += tx as f64 * self.cost.global_tx_cycles;
        self.stats.mem_requests += 1;
    }

    /// Warp-level `atomicAdd` on a `u32` buffer; returns the pre-add values.
    ///
    /// Lanes hitting the same location are serialised, as on hardware: the
    /// returned old values reflect lane order. The add itself is a host
    /// atomic, so blocks of a parallel launch may target the same location;
    /// only the *returned* old values are then execution-order-dependent
    /// (use [`crate::Gpu::launch_ordered`] for kernels that consume them).
    pub fn atomic_add_global(
        &mut self,
        buf: &DeviceBuffer<u32>,
        idxs: &[usize; WARP_SIZE],
        vals: [u32; WARP_SIZE],
        mask: Mask,
    ) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        if mask == 0 {
            return out;
        }
        let elem = std::mem::size_of::<u32>() as u64;
        let mut sectors = SectorSet::new();
        let mut active = 0u64;
        // Serialisation penalty: conflicting lanes replay the atomic.
        let mut conflicts = 0u64;
        let mut seen: Vec<usize> = Vec::new();
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                let i = idxs[l];
                out[l] = buf.atomic_add(i, vals[l]);
                sectors.insert_range(buf.addr_of(i), elem);
                if seen.contains(&i) {
                    conflicts += 1;
                } else {
                    seen.push(i);
                }
                active += 1;
            }
        }
        let tx = sectors.count();
        let c = &mut self.stats.counters;
        c.atomics += 1;
        c.gst_requests += 1;
        c.gst_transactions += tx;
        c.gst_bytes_requested += active * elem;
        self.stats.mem_bw_cycles += tx as f64 * self.cost.global_tx_cycles;
        self.stats.mem_requests += 1;
        self.stats.pipeline_cycles += (1 + conflicts) as f64 * self.cost.atomic_cycles;
        out
    }

    /// Shared-memory load of `u32` words.
    ///
    /// # Panics
    ///
    /// Panics if an active lane indexes beyond `arr.len()`.
    pub fn ld_shared(
        &mut self,
        arr: &SharedArray,
        idxs: &[usize; WARP_SIZE],
        mask: Mask,
    ) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        if mask == 0 {
            return out;
        }
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                assert!(idxs[l] < arr.len, "shared load out of bounds");
                out[l] = self.shared[arr.offset + idxs[l]];
            }
        }
        self.stats.counters.shared_loads += 1;
        self.stats.pipeline_cycles += self.cost.shared_cycles;
        out
    }

    /// Shared-memory store of `u32` words.
    ///
    /// # Panics
    ///
    /// Panics if an active lane indexes beyond `arr.len()`.
    pub fn st_shared(
        &mut self,
        arr: &SharedArray,
        idxs: &[usize; WARP_SIZE],
        vals: [u32; WARP_SIZE],
        mask: Mask,
    ) {
        if mask == 0 {
            return;
        }
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                assert!(idxs[l] < arr.len, "shared store out of bounds");
                self.shared[arr.offset + idxs[l]] = vals[l];
            }
        }
        self.stats.counters.shared_stores += 1;
        self.stats.pipeline_cycles += self.cost.shared_cycles;
    }

    /// Shared-memory load of `f32` values stored as bit patterns.
    pub fn ld_shared_f32(
        &mut self,
        arr: &SharedArray,
        idxs: &[usize; WARP_SIZE],
        mask: Mask,
    ) -> [f32; WARP_SIZE] {
        let raw = self.ld_shared(arr, idxs, mask);
        std::array::from_fn(|l| f32::from_bits(raw[l]))
    }

    /// Shared-memory store of `f32` values as bit patterns.
    pub fn st_shared_f32(
        &mut self,
        arr: &SharedArray,
        idxs: &[usize; WARP_SIZE],
        vals: [f32; WARP_SIZE],
        mask: Mask,
    ) {
        self.st_shared(arr, idxs, vals.map(f32::to_bits), mask);
    }

    /// Warp shuffle: every active lane reads `vals[srcs[l]]` from lane
    /// `srcs[l]`'s register.
    ///
    /// # Panics
    ///
    /// Panics if a source lane index is `>= 32`.
    pub fn shfl(
        &mut self,
        vals: [u32; WARP_SIZE],
        srcs: &[usize; WARP_SIZE],
        mask: Mask,
    ) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                assert!(srcs[l] < WARP_SIZE, "shuffle source lane out of range");
                out[l] = vals[srcs[l]];
            }
        }
        self.stats.counters.shuffles += 1;
        self.stats.pipeline_cycles += self.cost.shfl_cycles;
        out
    }

    /// `__syncwarp()`: a cheap intra-warp barrier.
    pub fn syncwarp(&mut self) {
        self.stats.pipeline_cycles += 1.0;
    }

    /// One counter-based RNG draw per active lane, keyed by
    /// `(seed, key[l], salt)`.
    pub fn rand_lanes(
        &mut self,
        seed: u64,
        keys: &[u64; WARP_SIZE],
        salt: u64,
        mask: Mask,
    ) -> [u32; WARP_SIZE] {
        let mut out = [0u32; WARP_SIZE];
        for l in 0..WARP_SIZE {
            if mask & (1 << l) != 0 {
                out[l] = rng::rand_u32(seed, keys[l], salt);
            }
        }
        self.stats.counters.rand_draws += mask.count_ones() as u64;
        self.stats.pipeline_cycles += self.cost.rand_cycles;
        out
    }

    /// Replays per-lane traces recorded by user-defined code, charging
    /// coalesced memory traffic, compute, and divergence.
    ///
    /// `traces[l]` is ignored for lanes not in `mask`.
    pub fn replay(&mut self, traces: &[LaneTrace; WARP_SIZE], mask: Mask) {
        crate::lane::replay_traces(self, traces, mask);
    }
}

/// A small set of 32-byte sector ids. A warp touches at most a few dozen
/// sectors per operation, so a linear-probe vector beats a hash set.
pub(crate) struct SectorSet {
    sectors: Vec<u64>,
}

impl SectorSet {
    pub(crate) fn new() -> Self {
        SectorSet {
            sectors: Vec::with_capacity(WARP_SIZE),
        }
    }

    /// Inserts every sector overlapped by `[addr, addr + bytes)`.
    pub(crate) fn insert_range(&mut self, addr: u64, bytes: u64) {
        let first = addr / SECTOR_BYTES;
        let last = (addr + bytes.max(1) - 1) / SECTOR_BYTES;
        for s in first..=last {
            if !self.sectors.contains(&s) {
                self.sectors.push(s);
            }
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.sectors.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_first_n_bounds() {
        assert_eq!(mask_first_n(0), 0);
        assert_eq!(mask_first_n(1), 1);
        assert_eq!(mask_first_n(32), FULL_MASK);
    }

    #[test]
    #[should_panic]
    fn mask_first_n_rejects_over_32() {
        let _ = mask_first_n(33);
    }

    #[test]
    fn sector_set_counts_unique_sectors() {
        let mut s = SectorSet::new();
        s.insert_range(0, 4);
        s.insert_range(4, 4);
        assert_eq!(s.count(), 1, "same sector");
        s.insert_range(32, 4);
        assert_eq!(s.count(), 2);
        s.insert_range(30, 4); // straddles sectors 0 and 1
        assert_eq!(s.count(), 2);
        s.insert_range(1000, 4);
        assert_eq!(s.count(), 3);
    }
}
