//! Black-box tests of the warp-level operations through the public launch
//! API: shuffle semantics, atomic return values, divergence accounting from
//! trace replay, and occupancy-driven behaviour.

use nextdoor_gpu::lane::{LaneOp, LaneTrace};
use nextdoor_gpu::warp::FULL_MASK;
use nextdoor_gpu::{Gpu, GpuSpec, LaunchConfig, WARP_SIZE};

fn one_warp(gpu: &mut Gpu, f: impl FnMut(&mut nextdoor_gpu::WarpCtx<'_>)) {
    let mut f = Some(f);
    // `launch_ordered`: the helper hands a `FnMut` to the single block.
    gpu.launch_ordered(
        "test",
        LaunchConfig {
            grid_dim: 1,
            block_dim: 32,
        },
        move |blk| {
            let mut g = f.take().expect("single block");
            blk.for_each_warp(|w| g(w));
        },
    );
}

#[test]
fn shfl_moves_values_between_lanes() {
    let mut gpu = Gpu::new(GpuSpec::small());
    one_warp(&mut gpu, |w| {
        let vals: [u32; WARP_SIZE] = std::array::from_fn(|l| l as u32 * 10);
        // Broadcast from lane 3.
        let out = w.shfl(vals, &[3; WARP_SIZE], FULL_MASK);
        assert!(out.iter().all(|&v| v == 30));
        // Rotate by one.
        let srcs: [usize; WARP_SIZE] = std::array::from_fn(|l| (l + 1) % WARP_SIZE);
        let rot = w.shfl(vals, &srcs, FULL_MASK);
        assert_eq!(rot[0], 10);
        assert_eq!(rot[31], 0);
    });
    assert_eq!(gpu.counters().shuffles, 2);
}

#[test]
fn atomic_add_serialises_conflicts_and_returns_olds() {
    let mut gpu = Gpu::new(GpuSpec::small());
    let buf = gpu.alloc::<u32>(4);
    one_warp(&mut gpu, |w| {
        // All 32 lanes hit slot 0: the returned "old" values must be a
        // permutation of 0..32 and the final cell 32.
        let olds = w.atomic_add_global(&buf, &[0; WARP_SIZE], [1; WARP_SIZE], FULL_MASK);
        let mut sorted = olds;
        sorted.sort_unstable();
        let expect: [u32; WARP_SIZE] = std::array::from_fn(|l| l as u32);
        assert_eq!(sorted, expect);
    });
    assert_eq!(buf.as_slice()[0], 32);
    assert!(gpu.counters().atomics > 0);
}

#[test]
fn rand_lanes_is_key_deterministic() {
    let mut gpu = Gpu::new(GpuSpec::small());
    let mut captured = Vec::new();
    one_warp(&mut gpu, |w| {
        let keys: [u64; WARP_SIZE] = std::array::from_fn(|l| l as u64);
        captured.push(w.rand_lanes(7, &keys, 1, FULL_MASK));
        captured.push(w.rand_lanes(7, &keys, 1, FULL_MASK));
        captured.push(w.rand_lanes(8, &keys, 1, FULL_MASK));
    });
    assert_eq!(captured[0], captured[1], "same keys, same draws");
    assert_ne!(captured[0], captured[2], "seed changes draws");
}

#[test]
fn replay_charges_divergence_for_uneven_traces() {
    let mut gpu = Gpu::new(GpuSpec::small());
    one_warp(&mut gpu, |w| {
        let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
        // Half the lanes do 1 compute op, half do 3: some lanes drop out early.
        for (l, t) in traces.iter_mut().enumerate() {
            let n = if l % 2 == 0 { 1 } else { 3 };
            for _ in 0..n {
                t.push(LaneOp::Compute(1));
            }
        }
        w.replay(&traces, FULL_MASK);
    });
    assert!(
        gpu.counters().divergent_branches > 0,
        "uneven trace lengths must register as divergence"
    );
}

#[test]
fn replay_coalesces_contiguous_and_splits_scattered() {
    let spec = GpuSpec::small();
    // Contiguous addresses: 32 x 4B = 4 sectors.
    let mut gpu = Gpu::new(spec.clone());
    one_warp(&mut gpu, |w| {
        let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
        for (l, t) in traces.iter_mut().enumerate() {
            t.push(LaneOp::GlobalLoad {
                addr: 0x1000 + (l as u64) * 4,
                bytes: 4,
            });
        }
        w.replay(&traces, FULL_MASK);
    });
    assert_eq!(gpu.counters().gld_transactions, 4);
    // Scattered addresses: one sector per lane.
    let mut gpu2 = Gpu::new(spec);
    one_warp(&mut gpu2, |w| {
        let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
        for (l, t) in traces.iter_mut().enumerate() {
            t.push(LaneOp::GlobalLoad {
                addr: 0x1000 + (l as u64) * 4096,
                bytes: 4,
            });
        }
        w.replay(&traces, FULL_MASK);
    });
    assert_eq!(gpu2.counters().gld_transactions, 32);
    assert!(gpu2.counters().cycles > gpu.counters().cycles);
}

#[test]
fn mixed_op_kinds_at_same_position_serialise() {
    let mut gpu = Gpu::new(GpuSpec::small());
    one_warp(&mut gpu, |w| {
        let mut traces: [LaneTrace; WARP_SIZE] = std::array::from_fn(|_| LaneTrace::new());
        for (l, t) in traces.iter_mut().enumerate() {
            if l < 16 {
                t.push(LaneOp::Rand);
            } else {
                t.push(LaneOp::Compute(1));
            }
        }
        w.replay(&traces, FULL_MASK);
    });
    assert!(gpu.counters().divergent_branches >= 1);
    assert_eq!(gpu.counters().rand_draws, 16);
}

#[test]
fn shared_memory_round_trip_within_block() {
    let mut gpu = Gpu::new(GpuSpec::small());
    let out = gpu.alloc::<u32>(64);
    gpu.launch(
        "stage",
        LaunchConfig {
            grid_dim: 1,
            block_dim: 64,
        },
        |blk| {
            let arr = blk.shared_alloc(64).expect("fits");
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let vals = w.lanes_from_fn(FULL_MASK, |l| (tid[l] * 3) as u32);
                w.st_shared(&arr, &tid, vals, FULL_MASK);
            });
            blk.syncthreads();
            // Warp 0 reads what warp 1 wrote (cross-warp via shared).
            blk.for_each_warp(|w| {
                let tid = w.thread_ids_in_block();
                let v = w.ld_shared(&arr, &tid.map(|t| 63 - t), FULL_MASK);
                w.st_global(&out, &tid, v, FULL_MASK);
            });
        },
    );
    for t in 0..64 {
        assert_eq!(out.as_slice()[t], ((63 - t) * 3) as u32);
    }
}

#[test]
fn occupancy_small_grids_leave_sms_idle() {
    let mut gpu = Gpu::new(GpuSpec::small()); // 8 SMs
    let stats = gpu.launch(
        "underfilled",
        LaunchConfig {
            grid_dim: 2,
            block_dim: 32,
        },
        |blk| blk.for_each_warp(|w| w.charge_compute(1000)),
    );
    let act = stats.counters.multiprocessor_activity();
    assert!(act < 30.0, "2 blocks on 8 SMs: activity {act}");
    let stats = gpu.launch(
        "filled",
        LaunchConfig {
            grid_dim: 64,
            block_dim: 32,
        },
        |blk| blk.for_each_warp(|w| w.charge_compute(1000)),
    );
    let act = stats.counters.multiprocessor_activity();
    assert!(act > 90.0, "64 equal blocks on 8 SMs: activity {act}");
}
