//! NextDoor: transit-parallel graph sampling for graph machine learning.
//!
//! This is the facade crate of the reproduction of *"Accelerating Graph
//! Sampling for Graph Machine Learning using GPUs"* (EuroSys 2021). It
//! re-exports the workspace crates under stable paths:
//!
//! * [`graph`] — CSR graphs, generators, datasets ([`nextdoor_graph`]).
//! * [`gpu`] — the SIMT GPU simulator substrate ([`nextdoor_gpu`]).
//! * [`core`] — the sampling API and the transit-parallel engine
//!   ([`nextdoor_core`]).
//! * [`apps`] — the ten sampling applications ([`nextdoor_apps`]).
//! * [`baselines`] — KnightKing, CPU samplers, frontier and message-passing
//!   engines ([`nextdoor_baselines`]).
//! * [`gnn`] — the GNN training substrate ([`nextdoor_gnn`]).
//! * [`serve`] — sampling-as-a-service: persistent sessions and request
//!   micro-batching ([`nextdoor_serve`]).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use nextdoor_apps as apps;
pub use nextdoor_baselines as baselines;
pub use nextdoor_core as core;
pub use nextdoor_gnn as gnn;
pub use nextdoor_gpu as gpu;
pub use nextdoor_graph as graph;
pub use nextdoor_serve as serve;
