#!/bin/bash
# Regenerates every table and figure of the paper into results/, plus the
# serving-layer datapoints (BENCH_serve.json: serve_bench writes the
# healthy regimes, then chaos/load/shard/tune splice their sections).
# Usage: ./run_all_experiments.sh [extra flags passed to every binary]
#
# set -euo pipefail (hence bash, not sh): -e aborts on the first failing
# binary, -u rejects unset variables, and -o pipefail makes a bench
# failure fatal even though every invocation is piped through tee —
# under plain `set -e` the pipe's exit status is tee's, so a crashed
# binary would otherwise scroll by as a half-written results file.
set -euo pipefail
cargo build -q --release -p nextdoor-bench
BIN=target/release
$BIN/table1 --samples 1024 "$@"        | tee results/table1.txt
$BIN/fig6   --samples 4096 "$@"        | tee results/fig6.txt
$BIN/fig7a  --samples 8192 "$@"        | tee results/fig7a.txt
$BIN/fig7b  --samples 4096 "$@"        | tee results/fig7b.txt
$BIN/fig8   --samples 4096 "$@"        | tee results/fig8.txt
$BIN/table4 --samples 8192 "$@"        | tee results/table4.txt
$BIN/fig9   --samples 2048 "$@"        | tee results/fig9.txt
$BIN/fig10  --samples 8192 "$@"        | tee results/fig10.txt
$BIN/table5 --samples 512  "$@"        | tee results/table5.txt
$BIN/large_graphs --samples 4096 "$@"  | tee results/large_graphs.txt
$BIN/serve_bench --samples 4096 "$@"   | tee results/serve_bench.txt
$BIN/chaos_bench --samples 4096 "$@"   | tee results/chaos_bench.txt
$BIN/load_bench  --samples 4096 "$@"   | tee results/load_bench.txt
$BIN/shard_bench --samples 1024 "$@"   | tee results/shard_bench.txt
$BIN/tune_bench  --samples 4096 "$@"   | tee results/tune_bench.txt
